"""Tests for the AIG data structure."""

import pytest

from repro.aig.network import AIG
from repro.aig.simulate import simulate


class TestConstruction:
    def test_inputs_and_literals(self):
        aig = AIG()
        a = aig.add_input("a")
        b = aig.add_input("b")
        assert (a, b) == (2, 4)
        assert aig.num_inputs == 2
        assert aig.input_names() == ("a", "b")

    def test_add_and_creates_node(self):
        aig = AIG()
        a, b = aig.add_inputs(2)
        lit = aig.add_and(a, b)
        assert lit == 6
        assert aig.num_ands == 1
        assert aig.fanins(3) == (2, 4)

    def test_constant_rules(self):
        aig = AIG()
        a = aig.add_input()
        assert aig.add_and(a, 0) == 0  # x & false
        assert aig.add_and(a, 1) == a  # x & true
        assert aig.add_and(a, a) == a  # idempotence
        assert aig.add_and(a, a ^ 1) == 0  # x & ~x
        assert aig.num_ands == 0

    def test_structural_hashing(self):
        aig = AIG()
        a, b = aig.add_inputs(2)
        first = aig.add_and(a, b)
        second = aig.add_and(b, a)  # commuted
        assert first == second
        assert aig.num_ands == 1

    def test_rejects_unknown_literal(self):
        aig = AIG()
        aig.add_input()
        with pytest.raises(ValueError):
            aig.add_and(2, 99)
        with pytest.raises(ValueError):
            aig.add_output(42)

    def test_fanins_rejects_non_and(self):
        aig = AIG()
        aig.add_input()
        with pytest.raises(ValueError):
            aig.fanins(1)


class TestDerivedGates:
    def evaluate_gate(self, build, table):
        """Build a 2-input gate and compare against its truth table."""
        aig = AIG()
        a, b = aig.add_inputs(2)
        aig.add_output(build(aig, a, b))
        for x in (0, 1):
            for y in (0, 1):
                assert simulate(aig, [x, y]) == [table[(y << 1) | x]]

    def test_or(self):
        self.evaluate_gate(lambda g, a, b: g.add_or(a, b), [0, 1, 1, 1])

    def test_nand(self):
        self.evaluate_gate(lambda g, a, b: g.add_nand(a, b), [1, 1, 1, 0])

    def test_xor(self):
        self.evaluate_gate(lambda g, a, b: g.add_xor(a, b), [0, 1, 1, 0])

    def test_xnor(self):
        self.evaluate_gate(lambda g, a, b: g.add_xnor(a, b), [1, 0, 0, 1])

    def test_mux(self):
        aig = AIG()
        s, t, f = aig.add_inputs(3)
        aig.add_output(aig.add_mux(s, t, f))
        for sel in (0, 1):
            for tv in (0, 1):
                for fv in (0, 1):
                    expected = tv if sel else fv
                    assert simulate(aig, [sel, tv, fv]) == [expected]

    def test_maj(self):
        aig = AIG()
        a, b, c = aig.add_inputs(3)
        aig.add_output(aig.add_maj(a, b, c))
        for m in range(8):
            bits = [(m >> k) & 1 for k in range(3)]
            assert simulate(aig, bits) == [int(sum(bits) >= 2)]

    def test_trees(self):
        aig = AIG()
        xs = aig.add_inputs(5)
        aig.add_output(aig.add_and_tree(xs), "and")
        aig.add_output(aig.add_or_tree(xs), "or")
        aig.add_output(aig.add_xor_tree(xs), "xor")
        for m in range(32):
            bits = [(m >> k) & 1 for k in range(5)]
            expected = [int(all(bits)), int(any(bits)), sum(bits) % 2]
            assert simulate(aig, bits) == expected

    def test_empty_trees(self):
        aig = AIG()
        assert aig.add_and_tree([]) == 1
        assert aig.add_or_tree([]) == 0
        assert aig.add_xor_tree([]) == 0


class TestInspection:
    def build_sample(self):
        aig = AIG()
        a, b, c = aig.add_inputs(3)
        ab = aig.add_and(a, b)
        abc = aig.add_and(ab, c)
        aig.add_output(abc, "f")
        return aig

    def test_counts(self):
        aig = self.build_sample()
        assert aig.num_vars == 6
        assert list(aig.input_variables()) == [1, 2, 3]
        assert list(aig.and_variables()) == [4, 5]
        assert aig.is_input(2) and not aig.is_input(4)
        assert aig.is_and(4) and not aig.is_and(3)

    def test_levels_and_depth(self):
        aig = self.build_sample()
        levels = aig.levels()
        assert levels[1] == 0
        assert levels[4] == 1
        assert levels[5] == 2
        assert aig.depth() == 2
        assert AIG().depth() == 0

    def test_fanout_counts(self):
        aig = self.build_sample()
        counts = aig.fanout_counts()
        assert counts[4] == 1  # ab feeds abc
        assert counts[5] == 1  # abc feeds the output
        assert counts[1] == 1
