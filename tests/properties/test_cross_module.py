"""Heavier cross-module property tests (hypothesis).

Where the per-module suites check local contracts, these tie whole
subsystems together on randomly generated structures: random AIGs through
cut enumeration against brute-force simulation, AIGER round-trips, and
the agreement of all four NPN-equivalence engines.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aig import aiger
from repro.aig.builders import random_control
from repro.aig.cuts import enumerate_cuts
from repro.aig.simulate import cut_function, simulate, simulate_words
from repro.baselines.exact_enum import exact_npn_canonical
from repro.baselines.guided import guided_exact_canonical
from repro.baselines.matcher import are_npn_equivalent
from repro.core.msv import compute_msv
from repro.core.transforms import random_transform
from repro.core.truth_table import TruthTable


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_random_aig_cut_functions_match_simulation(seed):
    """Every enumerated cut's truth table agrees with whole-AIG simulation."""
    rng = random.Random(seed)
    aig = random_control(inputs=5, gates=30, seed=seed)
    cuts = enumerate_cuts(aig, k=4, max_cuts=6)
    and_vars = list(aig.and_variables())
    if not and_vars:
        return
    variable = rng.choice(and_vars)
    for cut in cuts[variable][:4]:
        tt = cut_function(aig, variable, cut.leaves)
        for _ in range(6):
            stimulus = [rng.getrandbits(1) for _ in range(aig.num_inputs)]
            words = simulate_words(aig, stimulus, width=1)
            index = sum(
                (words[2 * leaf] & 1) << pos
                for pos, leaf in enumerate(sorted(cut.leaves))
            )
            assert tt.evaluate(index) == (words[2 * variable] & 1)


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_random_aig_aiger_roundtrip(seed):
    """dumps/loads preserves the observable behaviour of random AIGs."""
    rng = random.Random(seed ^ 0xA5A5)
    original = random_control(inputs=4, gates=25, seed=seed)
    rebuilt = aiger.loads(aiger.dumps(original))
    for _ in range(8):
        stimulus = [rng.getrandbits(1) for _ in range(4)]
        assert simulate(rebuilt, stimulus) == simulate(original, stimulus)


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=1, max_value=4), st.randoms(use_true_random=False))
def test_equivalence_engines_agree(n, rng):
    """Enumeration, guided canonicalisation, and the matcher: one verdict."""
    a = TruthTable(n, rng.getrandbits(1 << n))
    b = TruthTable(n, rng.getrandbits(1 << n))
    by_enumeration = (
        exact_npn_canonical(a).representative
        == exact_npn_canonical(b).representative
    )
    by_guided = guided_exact_canonical(a) == guided_exact_canonical(b)
    by_matcher = are_npn_equivalent(a, b)
    assert by_enumeration == by_guided == by_matcher


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=1, max_value=5), st.randoms(use_true_random=False))
def test_msv_refines_never_contradicts_exact(n, rng):
    """Equal exact canonicals force equal MSVs (never-split, via canon)."""
    tt = TruthTable(n, rng.getrandbits(1 << n))
    image = tt.apply(random_transform(n, rng))
    assert guided_exact_canonical(tt) == guided_exact_canonical(image)
    assert compute_msv(tt) == compute_msv(image)


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_cut_functions_msv_stable_under_leaf_relabelling(seed):
    """Reversing a cut's leaf order permutes the function: same MSV."""
    aig = random_control(inputs=5, gates=25, seed=seed)
    cuts = enumerate_cuts(aig, k=4, max_cuts=4)
    for variable in list(aig.and_variables())[:5]:
        for cut in cuts[variable][:2]:
            if cut.size < 2:
                continue
            forward = cut_function(aig, variable, sorted(cut.leaves))
            backward = cut_function(aig, variable, sorted(cut.leaves, reverse=True))
            assert compute_msv(forward) == compute_msv(backward)


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=2, max_value=6), st.randoms(use_true_random=False))
def test_support_invariant_under_npn(n, rng):
    """Essential-variable count is an NPN invariant."""
    tt = TruthTable(n, rng.getrandbits(1 << n))
    image = tt.apply(random_transform(n, rng))
    assert len(tt.support()) == len(image.support())


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=1, max_value=6), st.randoms(use_true_random=False))
def test_msv_of_shrunken_degenerate_function(n, rng):
    """Dropping don't-care variables preserves NPN equivalence of the core."""
    tt = TruthTable(n, rng.getrandbits(1 << n))
    widened = tt.extend(n + 1)
    assert widened.shrink_to_support() == tt.shrink_to_support()
    # And the widened copies of equivalent functions stay equivalent.
    image = tt.apply(random_transform(n, rng)).extend(n + 1)
    assert compute_msv(widened) == compute_msv(image)
