"""Golden regression corpus: pinned class counts and bucket digests.

``tests/data/golden_classes.json`` pins, for fixed seeds at n = 4..6,
the class count and the order-sensitive bucket digest of the face/point
classifier.  Every engine must keep reproducing those digests
byte-for-byte, and the class library built from the buckets must resolve
every corpus function to a verified witness — so any future refactor
that silently splits, merges, or reorders an orbit fails loudly here
instead of surfacing as a wrong experiment table months later.

To bless an *intentional* change, rerun
``PYTHONPATH=src python tests/data/generate_golden_classes.py``.
"""

import json
from pathlib import Path

import pytest

from repro.core.classifier import FacePointClassifier
from repro.engine import BatchedClassifier, ShardedClassifier
from repro.library import library_from_result

GOLDEN_PATH = Path(__file__).parent.parent / "data" / "golden_classes.json"
GOLDEN = json.loads(GOLDEN_PATH.read_text())

assert {spec["n"] for spec in GOLDEN} == {4, 5, 6}, "golden corpus must cover n=4..6"


def _tables(spec):
    from tests.data.generate_golden_classes import workload_tables

    return workload_tables(spec)


@pytest.fixture(scope="module", params=GOLDEN, ids=lambda spec: f"n{spec['n']}")
def golden_case(request):
    spec = request.param
    return spec, _tables(spec)


class TestEnginesReproduceGoldenBuckets:
    def test_perfn_engine(self, golden_case):
        spec, tables = golden_case
        result = FacePointClassifier().classify(tables)
        assert result.num_classes == spec["num_classes"]
        assert result.buckets_digest() == spec["buckets_digest"]

    def test_batched_engine(self, golden_case):
        spec, tables = golden_case
        result = BatchedClassifier().classify(tables)
        assert result.num_classes == spec["num_classes"]
        assert result.buckets_digest() == spec["buckets_digest"]

    def test_sharded_engine(self, golden_case):
        spec, tables = golden_case
        result = ShardedClassifier(workers=2, shard_size=127).classify(tables)
        assert result.num_classes == spec["num_classes"]
        assert result.buckets_digest() == spec["buckets_digest"]


class TestLibraryIdentityPins:
    def test_class_ids_and_representatives_unchanged(self, golden_case):
        """Class ids (and the canonical/elected representatives behind
        them) are byte-identical to the golden data — the gather-kernel
        build path must not move a single class."""
        spec, tables = golden_case
        library = library_from_result(FacePointClassifier().classify(tables))
        derived = {
            entry.class_id: entry.representative.to_hex()
            for entry in library.entries()
        }
        assert derived == spec["classes"]

    def test_batched_engine_builds_identical_ids(self, golden_case):
        spec, tables = golden_case
        library = library_from_result(BatchedClassifier().classify(tables))
        assert {
            e.class_id: e.representative.to_hex() for e in library.entries()
        } == spec["classes"]


class TestLibraryMatchPath:
    def test_library_resolves_every_corpus_function(self, golden_case):
        """Build a library from the buckets; every input must match back.

        The witness is verified against the stored representative for
        every query — the acceptance contract of `library match`.
        """
        spec, tables = golden_case
        result = FacePointClassifier().classify(tables)
        library = library_from_result(result)
        assert library.num_classes == spec["num_classes"]
        assert library.num_functions == spec["num_functions"]
        seen_classes = set()
        for tt in tables:
            hit = library.match(tt)
            assert hit is not None, f"library lost {tt!r}"
            assert hit.representative.apply(hit.transform) == tt
            seen_classes.add(hit.class_id)
        assert len(seen_classes) == spec["num_classes"]


class TestCanonicalEngineAgainstGolden:
    """The exact engine must reproduce the golden class structure.

    Its keys are canonical forms (not signatures), so the order-sensitive
    bucket digest differs by construction — the pins here are the class
    count, the member partition, and the portable ids.
    """

    def test_counts_and_partition_match(self, golden_case):
        from repro.canonical.engine import CanonicalClassifier

        spec, tables = golden_case
        canonical = CanonicalClassifier().classify(tables)
        reference = FacePointClassifier().classify(tables)
        assert canonical.num_classes == spec["num_classes"]

        def partition(result):
            return sorted(
                tuple(sorted(tt.bits for tt in members))
                for members in result.groups.values()
            )

        assert partition(canonical) == partition(reference)

    def test_library_ids_are_golden_canonical_ids(self, golden_case):
        from repro.canonical.engine import CanonicalClassifier

        spec, tables = golden_case
        library = library_from_result(CanonicalClassifier().classify(tables))
        assert {
            e.class_id: e.representative.to_hex() for e in library.entries()
        } == spec["classes"]
