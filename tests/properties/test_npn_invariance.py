"""The NPN-invariance harness: no engine may ever split an orbit.

The never-split property is the one contract every classification layer
must preserve (paper Section IV): NPN-equivalent functions always share a
bucket, because every MSV part is invariant under input permutation,
input negation and (via phase canonicalisation) output negation.  This
suite enforces it for *all three* engines — the per-function
``FacePointClassifier``, the vectorized ``BatchedClassifier`` and the
multi-process ``ShardedClassifier`` — from two directions:

* **Hypothesis orbits** (n = 3..6, shrinking): the
  :func:`tests.strategies.npn_orbits` strategy builds NPN images by
  applying input permutations and input/output negations *directly to
  truth tables* through ``TruthTable`` primitives — deliberately not via
  ``repro.core.transforms.NPNTransform`` — so a bug in the transform
  algebra cannot mask a bug in the signatures, or vice versa.  A
  violation shrinks to the smallest arity and simplest orbit that still
  splits.  The in-process engines run under ``@given``; the sharded
  engine keeps a seeded orbit-soup workload (one pool spin-up per
  hypothesis example would dominate the suite) — its bucket parity with
  the fuzzed engines is asserted on the same soup.
* **Exhaustive small n**: every one of the ``2^(2^n)`` functions at
  n ≤ 3 (and a strided slice of n = 4), asserting all engines produce
  identical ``ClassificationResult`` buckets and that the class counts
  hit the known NPN class numbers (1, 2, 4, 14 for n = 0..3).
"""

import random

import pytest
from hypothesis import given

from repro.core.classifier import FacePointClassifier
from repro.core.truth_table import TruthTable
from repro.engine import BatchedClassifier, ShardedClassifier
from tests.strategies import npn_orbits

#: Number of NPN equivalence classes over all n-variable functions
#: (OEIS A000370).  At n <= 3 the MSV is a perfect discriminator, so the
#: signature classifiers must hit these exactly, not just bound them.
KNOWN_NPN_CLASSES = {0: 1, 1: 2, 2: 4, 3: 14}

#: Engine factories; fresh instances per test so caches never leak
#: between cases.  The sharded instance uses 2 workers and a small shard
#: size so the fan-out/merge path genuinely executes even on tiny inputs.
ENGINES = {
    "perfn": lambda: FacePointClassifier(),
    "batched": lambda: BatchedClassifier(),
    "sharded": lambda: ShardedClassifier(workers=2, shard_size=5),
}


# ----------------------------------------------------------------------
# Seeded random orbit generator
# ----------------------------------------------------------------------


def random_npn_image(tt: TruthTable, rng: random.Random) -> TruthTable:
    """A random NPN image built from truth-table primitives only.

    Input negations, then an input permutation, then optionally the
    output complement — each applied directly to the table, never through
    the ``NPNTransform`` group algebra.
    """
    out = tt
    if tt.n:
        out = out.flip_inputs(rng.getrandbits(tt.n))
    perm = list(range(tt.n))
    rng.shuffle(perm)
    out = out.permute(tuple(perm))
    if rng.getrandbits(1):
        out = ~out
    return out


def random_orbit(n: int, size: int, rng: random.Random) -> list[TruthTable]:
    """A seed function plus ``size - 1`` random NPN images of it."""
    seed_function = TruthTable.random(n, rng)
    return [seed_function] + [
        random_npn_image(seed_function, rng) for _ in range(size - 1)
    ]


def bucket_index_by_table(result) -> dict[TruthTable, int]:
    """Map every classified table to the index of its bucket."""
    placement: dict[TruthTable, int] = {}
    for index, members in enumerate(result.groups.values()):
        for tt in members:
            placement[tt] = index
    return placement


class TestOrbitGenerator:
    """The generator itself must produce genuine NPN-equivalent images."""

    @pytest.mark.parametrize("n", [1, 2, 3, 4])
    def test_images_are_exactly_npn_equivalent(self, n):
        from repro.baselines.guided import guided_exact_canonical

        rng = random.Random(500 + n)
        seed_function = TruthTable.random(n, rng)
        reference = guided_exact_canonical(seed_function)
        for _ in range(6):
            image = random_npn_image(seed_function, rng)
            assert guided_exact_canonical(image) == reference

    def test_orbit_is_seed_deterministic(self):
        first = random_orbit(4, 8, random.Random(99))
        second = random_orbit(4, 8, random.Random(99))
        assert first == second


#: Engines cheap enough to instantiate once per hypothesis example; the
#: sharded engine (process-pool spin-up) stays on the seeded soup below.
FUZZ_ENGINES = ("batched", "perfn")


class TestNeverSplit:
    """Property: every engine keeps each orbit inside a single bucket."""

    @pytest.mark.parametrize("engine", FUZZ_ENGINES)
    @given(npn_orbits(max_images=6))
    def test_orbits_never_split(self, engine, orbit):
        seed_function, images = orbit
        flat = [seed_function, *images]
        result = ENGINES[engine]().classify(flat)
        assert result.num_functions == len(flat)
        # The whole orbit is NPN-equivalent and the MSV is invariant, so
        # the engine must produce exactly one bucket holding everything.
        assert result.num_classes == 1, (
            f"orbit split into {result.num_classes} buckets"
        )
        placement = bucket_index_by_table(result)
        assert len({placement[tt] for tt in flat}) == 1

    @pytest.mark.parametrize("engine", FUZZ_ENGINES)
    @given(npn_orbits(max_images=8))
    def test_orbit_signatures_are_equal(self, engine, orbit):
        """Stronger than bucketing: the signatures themselves coincide."""
        seed_function, images = orbit
        flat = [seed_function, *images]
        classifier = ENGINES[engine]()
        if hasattr(classifier, "signatures"):
            signatures = classifier.signatures(flat)
        else:
            signatures = [classifier.signature(tt) for tt in flat]
        assert len(set(signatures)) == 1

    @pytest.mark.parametrize("n", [3, 4, 5, 6])
    def test_sharded_orbit_soup_never_splits(self, n):
        """Seeded soup for the pool engine: one spin-up, many orbits."""
        rng = random.Random(1000 + n)
        orbits = [random_orbit(n, 6, rng) for _ in range(8)]
        flat = [tt for orbit in orbits for tt in orbit]
        rng.shuffle(flat)
        result = ShardedClassifier(workers=2, shard_size=5).classify(flat)
        assert result.num_functions == len(flat)
        # Sound, never-split: at most one bucket per planted orbit.
        assert result.num_classes <= len(orbits)
        placement = bucket_index_by_table(result)
        for orbit in orbits:
            buckets = {placement[tt] for tt in orbit}
            assert len(buckets) == 1, f"orbit split across buckets {buckets}"

    @pytest.mark.parametrize("n", [3, 4, 5])
    def test_engines_agree_on_orbit_workload(self, n):
        """All three engines produce byte-identical buckets on orbit soup."""
        rng = random.Random(3000 + n)
        flat = [tt for _ in range(6) for tt in random_orbit(n, 5, rng)]
        rng.shuffle(flat)
        digests = {
            name: ENGINES[name]().classify(flat).buckets_digest()
            for name in sorted(ENGINES)
        }
        assert len(set(digests.values())) == 1, digests


class TestExhaustiveParity:
    """All 2^(2^n) functions at small n: exact parity, exact class counts."""

    @pytest.mark.parametrize("n", [0, 1, 2, 3])
    def test_every_function_small_n(self, n):
        tables = [TruthTable(n, bits) for bits in range(1 << (1 << n))]
        reference = FacePointClassifier().classify(tables)
        batched = BatchedClassifier().classify(tables)
        sharded = ShardedClassifier(workers=2, shard_size=37).classify(tables)
        assert batched.buckets_digest() == reference.buckets_digest()
        assert sharded.buckets_digest() == reference.buckets_digest()
        assert reference.num_classes == KNOWN_NPN_CLASSES[n]
        assert reference.num_functions == len(tables)

    def test_sampled_slice_n4(self):
        # A strided sweep across the full 2^16 space plus its complement
        # closure, so output-phase canonicalisation is exercised too.
        bits = list(range(0, 1 << 16, 131))
        tables = [TruthTable(4, b) for b in bits]
        tables += [~tt for tt in tables[:100]]
        reference = FacePointClassifier().classify(tables)
        batched = BatchedClassifier().classify(tables)
        sharded = ShardedClassifier(workers=2).classify(tables)
        assert batched.buckets_digest() == reference.buckets_digest()
        assert sharded.buckets_digest() == reference.buckets_digest()
        # 222 NPN classes exist at n=4; a broad sample cannot exceed that.
        assert reference.num_classes <= 222
