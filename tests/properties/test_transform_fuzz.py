"""Seeded fuzz suite for the NPN transform group and the witness matcher.

Random transforms at n = 3..6 exercise the three contracts everything
above :mod:`repro.core.transforms` quietly relies on:

* group structure — ``compose``/``inverse`` round-trip to the identity
  and ``compose`` agrees with function composition on tables;
* action coherence — ``apply_table`` agrees with the index-by-index
  semantics of ``apply_index`` on every minterm;
* witness completeness — ``find_npn_transform(f, t(f))`` always returns
  a transform that verifiably reproduces the image.

All randomness is seeded: a failure reproduces byte-for-byte.
"""

import random

import pytest

from repro.baselines.matcher import find_npn_transform
from repro.core.transforms import NPNTransform, random_transform
from repro.core.truth_table import TruthTable

SEED = 0x5EED
ROUNDS = 15

ARITIES = pytest.mark.parametrize("n", range(3, 7))


def _rng(n: int, salt: int) -> random.Random:
    return random.Random(SEED + 1000 * n + salt)


@ARITIES
class TestGroupLaws:
    def test_compose_inverse_round_trips_to_identity(self, n):
        rng = _rng(n, 1)
        for _ in range(ROUNDS):
            t = random_transform(n, rng)
            assert t.compose(t.inverse()).is_identity
            assert t.inverse().compose(t).is_identity
            assert t.inverse().inverse() == t

    def test_inverse_undoes_the_action_on_tables(self, n):
        rng = _rng(n, 2)
        for _ in range(ROUNDS):
            t = random_transform(n, rng)
            f = TruthTable.random(n, rng)
            assert f.apply(t).apply(t.inverse()) == f

    def test_compose_agrees_with_sequential_application(self, n):
        rng = _rng(n, 3)
        for _ in range(ROUNDS):
            t, u = random_transform(n, rng), random_transform(n, rng)
            f = TruthTable.random(n, rng)
            assert f.apply(u).apply(t) == f.apply(t.compose(u))

    def test_associativity_on_tables(self, n):
        rng = _rng(n, 4)
        for _ in range(5):
            a, b, c = (random_transform(n, rng) for _ in range(3))
            f = TruthTable.random(n, rng)
            assert f.apply(a.compose(b).compose(c)) == f.apply(
                a.compose(b.compose(c))
            )


@ARITIES
class TestActionCoherence:
    def test_apply_table_agrees_with_apply_index(self, n):
        """Bit ``m`` of ``t(f)`` is ``output_phase ^ f(apply_index(m))``."""
        rng = _rng(n, 5)
        for _ in range(ROUNDS):
            t = random_transform(n, rng)
            f = TruthTable.random(n, rng)
            g = f.apply(t)
            for index in range(1 << n):
                expected = t.output_phase ^ f.evaluate(t.apply_index(index))
                assert g.evaluate(index) == expected

    def test_apply_index_is_a_bijection(self, n):
        rng = _rng(n, 6)
        for _ in range(ROUNDS):
            t = random_transform(n, rng)
            images = {t.apply_index(index) for index in range(1 << n)}
            assert images == set(range(1 << n))


@ARITIES
class TestWitnessRecovery:
    def test_matcher_always_returns_a_verified_witness(self, n):
        rng = _rng(n, 7)
        for _ in range(ROUNDS):
            f = TruthTable.random(n, rng)
            t = random_transform(n, rng)
            image = f.apply(t)
            witness = find_npn_transform(f, image)
            assert witness is not None
            assert f.apply(witness) == image

    def test_witness_inverse_maps_back(self, n):
        rng = _rng(n, 8)
        for _ in range(5):
            f = TruthTable.random(n, rng)
            image = f.apply(random_transform(n, rng))
            witness = find_npn_transform(f, image)
            assert image.apply(witness.inverse()) == f


@ARITIES
def test_as_dict_round_trip(n):
    rng = _rng(n, 9)
    for _ in range(ROUNDS):
        t = random_transform(n, rng)
        assert NPNTransform.from_dict(t.as_dict()) == t


def test_from_dict_rejects_invalid_payloads():
    with pytest.raises(ValueError):
        NPNTransform.from_dict({"perm": [0, 0, 1]})
    with pytest.raises(ValueError):
        NPNTransform.from_dict({"perm": [0, 1], "input_phase": 4})
    with pytest.raises(ValueError):
        NPNTransform.from_dict({"perm": [0, 1], "output_phase": 2})
