"""Property fuzz for the NPN transform group and the witness matcher.

Ported from seeded loops to hypothesis ``@given`` (see
:mod:`tests.strategies`): the strategies draw the arity (3..6) together
with tables and transforms, so one property covers every supported
single-word arity and a failure shrinks to the smallest arity and
simplest table/transform that still breaks it.

The three contracts everything above :mod:`repro.core.transforms`
quietly relies on:

* group structure — ``compose``/``inverse`` round-trip to the identity
  and ``compose`` agrees with function composition on tables;
* action coherence — ``apply_table`` agrees with the index-by-index
  semantics of ``apply_index`` on every minterm;
* witness completeness — ``find_npn_transform(f, t(f))`` always returns
  a transform that verifiably reproduces the image.

Runs are derandomized under the default ``ci`` profile (see
``tests/conftest.py``), so a failure reproduces byte-for-byte.
"""

import pytest
from hypothesis import given

from repro.baselines.matcher import find_npn_transform
from repro.core.transforms import NPNTransform
from tests.strategies import npn_transforms, tables_with_transforms


class TestGroupLaws:
    @given(npn_transforms())
    def test_compose_inverse_round_trips_to_identity(self, t):
        assert t.compose(t.inverse()).is_identity
        assert t.inverse().compose(t).is_identity
        assert t.inverse().inverse() == t

    @given(tables_with_transforms(transforms=1))
    def test_inverse_undoes_the_action_on_tables(self, case):
        f, (t,) = case
        assert f.apply(t).apply(t.inverse()) == f

    @given(tables_with_transforms(transforms=2))
    def test_compose_agrees_with_sequential_application(self, case):
        f, (t, u) = case
        assert f.apply(u).apply(t) == f.apply(t.compose(u))

    @given(tables_with_transforms(transforms=3))
    def test_associativity_on_tables(self, case):
        f, (a, b, c) = case
        assert f.apply(a.compose(b).compose(c)) == f.apply(
            a.compose(b.compose(c))
        )


class TestActionCoherence:
    @given(tables_with_transforms(transforms=1))
    def test_apply_table_agrees_with_apply_index(self, case):
        """Bit ``m`` of ``t(f)`` is ``output_phase ^ f(apply_index(m))``."""
        f, (t,) = case
        g = f.apply(t)
        for index in range(1 << f.n):
            expected = t.output_phase ^ f.evaluate(t.apply_index(index))
            assert g.evaluate(index) == expected

    @given(npn_transforms())
    def test_apply_index_is_a_bijection(self, t):
        images = {t.apply_index(index) for index in range(1 << t.n)}
        assert images == set(range(1 << t.n))


class TestWitnessRecovery:
    @given(tables_with_transforms(transforms=1))
    def test_matcher_always_returns_a_verified_witness(self, case):
        f, (t,) = case
        image = f.apply(t)
        witness = find_npn_transform(f, image)
        assert witness is not None
        assert f.apply(witness) == image

    @given(tables_with_transforms(transforms=1))
    def test_witness_inverse_maps_back(self, case):
        f, (t,) = case
        image = f.apply(t)
        witness = find_npn_transform(f, image)
        assert image.apply(witness.inverse()) == f


@given(npn_transforms())
def test_as_dict_round_trip(t):
    assert NPNTransform.from_dict(t.as_dict()) == t


def test_from_dict_rejects_invalid_payloads():
    with pytest.raises(ValueError):
        NPNTransform.from_dict({"perm": [0, 0, 1]})
    with pytest.raises(ValueError):
        NPNTransform.from_dict({"perm": [0, 1], "input_phase": 4})
    with pytest.raises(ValueError):
        NPNTransform.from_dict({"perm": [0, 1], "output_phase": 2})
