"""End-to-end daemon tests: sockets, both protocols, drain, soak.

A session-scoped :class:`ThreadedService` hosts the exhaustive n<=3
library; every served answer is re-checked against the offline
``library.match`` path, so these tests double as client/server parity
checks.  The SIGTERM drain runs against a real ``repro serve``
subprocess — the only way to test signal handling honestly.
"""

import json
import os
import random
import signal
import socket
import subprocess
import sys
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import pytest

from repro.core.transforms import random_transform
from repro.core.truth_table import TruthTable
from repro.service import (
    MAX_LINE_BYTES,
    ServiceClient,
    ServiceError,
    ServiceUnavailableError,
    ThreadedService,
    parse_address,
)


@pytest.fixture(scope="module")
def service(tiny_library):
    with ThreadedService(tiny_library, max_batch=32, max_wait_ms=1.0) as svc:
        yield svc


@pytest.fixture()
def client(service):
    with ServiceClient(port=service.port) as c:
        yield c


def raw_exchange(port: int, payload: bytes, recv_lines: int = 1) -> list[bytes]:
    """Write raw bytes, read reply lines — for malformed-input tests."""
    with socket.create_connection(("127.0.0.1", port), timeout=10) as sock:
        sock.sendall(payload)
        handle = sock.makefile("rb")
        return [handle.readline() for _ in range(recv_lines)]


class TestAddressParsing:
    def test_parse_address(self):
        assert parse_address("127.0.0.1:8355") == ("127.0.0.1", 8355)

    def test_parse_address_rejects_garbage(self):
        for bad in ("nope", ":80", "host:", "host:many", "host:0"):
            with pytest.raises(ValueError):
                parse_address(bad)


class TestRoundTrips:
    def test_ping(self, client, tiny_library):
        assert client.ping() == {
            "pong": True,
            "classes": tiny_library.num_classes,
        }

    def test_match_hit_verifies_offline(self, client, tiny_library):
        query = TruthTable(3, 0xE8)
        result = client.match(query)
        offline = tiny_library.match(query)
        assert result["hit"]
        assert result["class_id"] == offline.class_id
        assert ServiceClient.verify(result, query)

    def test_match_by_string_payloads(self, client):
        assert client.match("11101000")["class_id"] == client.match(
            "0xe8", n=3
        )["class_id"]

    def test_classify(self, client, tiny_library):
        query = TruthTable(3, 0x96)
        result = client.classify(query)
        assert result["known"]
        assert result["class_id"] == tiny_library.lookup(query).class_id

    def test_classify_unknown_arity_is_answered(self, client, tiny_library):
        query = TruthTable.majority(5)
        result = client.classify(query)
        assert not result["known"]
        assert result["class_id"].startswith("n5-")
        assert client.match(query) == {"hit": False, "n": 5, "cached": False}

    def test_cached_flag_on_repeat(self, service, tiny_library):
        query = TruthTable(3, 0x7C)
        with ServiceClient(port=service.port) as c:
            first = c.match(query)
            second = c.match(query)
        assert first["hit"] and not first["cached"]
        assert second["cached"]
        assert first["class_id"] == second["class_id"]

    def test_stats_reflects_traffic(self, client):
        client.ping()
        before = client.stats()
        client.match(TruthTable(3, 0x1E))
        after = client.stats()
        assert after["requests_total"] >= before["requests_total"] + 2
        assert after["requests_by_op"]["match"] >= 1
        assert after["batches"] >= 1
        assert after["latency_samples"] >= 1

    def test_pipelined_match_many(self, client, tiny_library):
        rng = random.Random(11)
        queries = [
            TruthTable.random(3, rng).apply(random_transform(3, rng))
            for _ in range(64)
        ]
        results = client.match_many(queries)
        assert len(results) == len(queries)
        for query, result in zip(queries, results):
            offline = tiny_library.match(query)
            assert result["hit"] == (offline is not None)
            if result["hit"]:
                assert result["class_id"] == offline.class_id
                assert ServiceClient.verify(result, query)


class TestRejections:
    def test_malformed_json_line(self, service):
        (line,) = raw_exchange(service.port, b"{this is not json}\n")
        reply = json.loads(line)
        assert reply["ok"] is False
        assert reply["error"]["type"] == "bad_request"

    def test_bad_request_echoes_id(self, service):
        (line,) = raw_exchange(
            service.port, b'{"id": 41, "op": "explode"}\n'
        )
        reply = json.loads(line)
        assert reply["id"] == 41
        assert reply["error"]["type"] == "bad_request"

    def test_bad_table_payload(self, service):
        (line,) = raw_exchange(
            service.port, b'{"op": "match", "table": "zzz"}\n'
        )
        assert json.loads(line)["error"]["type"] == "bad_request"

    def test_oversized_line_rejected_and_connection_closed(self, service):
        blob = b'{"op": "match", "table": "' + b"0" * (MAX_LINE_BYTES + 64)
        with socket.create_connection(
            ("127.0.0.1", service.port), timeout=10
        ) as sock:
            sock.sendall(blob)  # no newline needed — limit trips first
            handle = sock.makefile("rb")
            reply = json.loads(handle.readline())
            assert reply["error"]["type"] == "payload_too_large"
            assert handle.readline() == b""  # daemon hung up

    def test_empty_lines_are_ignored(self, service):
        (line,) = raw_exchange(
            service.port, b"\n\n" + b'{"op": "ping"}\n'
        )
        assert json.loads(line)["ok"] is True

    def test_client_raises_typed_service_error(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.classify("zzz")
        assert excinfo.value.error_type == "bad_request"


class TestHttpFront:
    def get(self, port, path):
        import http.client

        conn = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
        try:
            conn.request("GET", path)
            response = conn.getresponse()
            return response.status, json.loads(response.read() or b"null")
        finally:
            conn.close()

    def post(self, port, path, body):
        import http.client

        conn = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
        try:
            conn.request(
                "POST",
                path,
                body=json.dumps(body),
                headers={"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            return response.status, json.loads(response.read() or b"null")
        finally:
            conn.close()

    def test_healthz(self, service, tiny_library):
        status, body = self.get(service.port, "/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert body["classes"] == tiny_library.num_classes
        assert body["arities"] == [2, 3]

    def test_http_match_parity_with_ndjson(self, service, tiny_library):
        query = TruthTable(3, 0xE8)
        status, body = self.post(
            service.port, "/v1/match", {"table": "0xe8", "n": 3}
        )
        assert status == 200
        result = body["result"]
        assert result["class_id"] == tiny_library.match(query).class_id
        assert ServiceClient.verify(result, query)

    def test_http_classify(self, service):
        status, body = self.post(
            service.port, "/v1/classify", {"table": "0110"}
        )
        assert status == 200
        assert body["result"]["known"]

    def test_http_stats(self, service):
        status, body = self.get(service.port, "/v1/stats")
        assert status == 200
        assert "mean_batch_size" in body

    def test_http_bad_body_is_400(self, service):
        status, body = self.post(service.port, "/v1/match", ["not", "a", "dict"])
        assert status == 400
        assert body["error"]["type"] == "bad_request"

    def test_http_unknown_route_is_400(self, service):
        status, body = self.get(service.port, "/nope")
        assert status == 400

    def test_http_oversized_body_is_413(self, service):
        import http.client

        conn = http.client.HTTPConnection("127.0.0.1", service.port, timeout=10)
        try:
            conn.putrequest("POST", "/v1/match")
            conn.putheader("Content-Length", str(MAX_LINE_BYTES + 1))
            conn.endheaders()
            response = conn.getresponse()
            assert response.status == 413
        finally:
            conn.close()


class TestConcurrencySoak:
    def test_many_clients_agree_with_offline_library(
        self, service, tiny_library
    ):
        rng = random.Random(2023)
        workload = [
            TruthTable.random(3, rng).apply(random_transform(3, rng))
            for _ in range(240)
        ]
        chunks = [workload[i::8] for i in range(8)]

        def run_chunk(queries):
            with ServiceClient(port=service.port) as c:
                return c.match_many(queries)

        with ThreadPoolExecutor(max_workers=8) as pool:
            all_results = list(pool.map(run_chunk, chunks))

        checked = 0
        for queries, results in zip(chunks, all_results):
            for query, result in zip(queries, results):
                offline = tiny_library.match(query)
                assert result["hit"] == (offline is not None)
                if result["hit"]:
                    assert result["class_id"] == offline.class_id
                    assert ServiceClient.verify(result, query)
                checked += 1
        assert checked == 240


class TestSigtermDrain:
    def test_serve_subprocess_drains_on_sigterm(self, tmp_path, tiny_library):
        library_dir = tmp_path / "lib"
        tiny_library.save(library_dir)
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[2] / "src")
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
        process = subprocess.Popen(
            [sys.executable, "-u", "-m", "repro", "serve",
             "--library", str(library_dir), "--port", "0"],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            env=env,
            text=True,
        )
        try:
            ready = process.stdout.readline()
            assert "serving" in ready, ready
            port = int(ready.rsplit(":", 1)[1])
            with ServiceClient(port=port) as c:
                result = c.match(TruthTable(3, 0xE8))
                assert result["hit"]
            process.send_signal(signal.SIGTERM)
            out, _ = process.communicate(timeout=30)
            assert process.returncode == 0
            assert "drained, bye" in out
        finally:
            if process.poll() is None:
                process.kill()
                process.communicate()

    def test_threaded_service_stop_is_idempotent(self, tiny_library):
        svc = ThreadedService(tiny_library)
        svc.start()
        port = svc.port
        with ServiceClient(port=port) as c:
            assert c.ping()["pong"]
        svc.stop()
        svc.stop()
        deadline = time.monotonic() + 5
        while time.monotonic() < deadline:
            try:
                socket.create_connection(("127.0.0.1", port), timeout=0.2).close()
                time.sleep(0.05)
            except OSError:
                break
        else:
            pytest.fail("listener still accepting after stop()")


class TestUnavailable:
    """Transport failures surface as the typed ServiceUnavailableError.

    The router's CLI retry loop and the fabric's chaos tolerance both
    key off this one exception type — a client that leaked raw OSErrors
    or socket.timeouts would make "retry on unavailability" impossible
    to express.
    """

    def test_is_a_typed_service_error(self):
        error = ServiceUnavailableError("nobody home")
        assert isinstance(error, ServiceError)
        assert error.error_type == "unavailable"

    def test_connection_refused(self):
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        dead_port = probe.getsockname()[1]
        probe.close()  # nothing listens here now
        client = ServiceClient(port=dead_port, timeout=2.0)
        with pytest.raises(ServiceUnavailableError):
            client.ping()

    def test_read_timeout(self):
        # An accepting socket that never answers: the client must give
        # up after its read timeout, not hang.
        hole = socket.socket()
        hole.bind(("127.0.0.1", 0))
        hole.listen(1)
        try:
            client = ServiceClient(
                port=hole.getsockname()[1], timeout=0.3
            )
            t0 = time.monotonic()
            with pytest.raises(ServiceUnavailableError) as excinfo:
                client.ping()
            assert time.monotonic() - t0 < 5.0
            assert "no reply" in str(excinfo.value)
        finally:
            hole.close()

    def test_peer_hangup_mid_request(self):
        # A server that accepts and immediately closes: the empty read
        # is a typed unavailability, and the client closes its socket so
        # the next call re-dials instead of writing into a dead pipe.
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)

        def accept_and_hang_up():
            conn, _ = listener.accept()
            conn.close()

        from threading import Thread

        thread = Thread(target=accept_and_hang_up, daemon=True)
        thread.start()
        try:
            client = ServiceClient(
                port=listener.getsockname()[1], timeout=2.0
            )
            # Depending on who wins the race, the failure is either an
            # empty read ("closed the connection") or ECONNRESET on the
            # write — both must surface as the same typed error.
            with pytest.raises(ServiceUnavailableError):
                client.ping()
            assert client._sock is None  # ready to re-dial
        finally:
            thread.join(timeout=5)
            listener.close()

    def test_connect_timeout_is_separate_knob(self):
        client = ServiceClient(port=1, timeout=30.0, connect_timeout=0.5)
        assert client.connect_timeout == 0.5
        assert client.timeout == 30.0
        default = ServiceClient(port=1, timeout=7.0)
        assert default.connect_timeout == 7.0
