"""The observability surface of the daemon, end to end.

Covers the three new read paths — ``GET /metrics`` (Prometheus text),
``GET /v1/trace/recent`` (per-stage spans), the identity block in
``stats`` — plus the thread-safety contracts of
:class:`ServiceMetrics` and the :class:`LatencyWindow` quantile edge
cases.

Registry assertions are **deltas**: the process-global registry
accumulates across every test in the session, so tests capture a
before-value and assert growth, never absolute counts.
"""

import json
import socket
import threading

import pytest

from repro import obs
from repro.core.truth_table import TruthTable
from repro.service import ServiceClient, ThreadedService
from repro.service.client import http_get
from repro.service.metrics import LatencyWindow, ServiceMetrics


@pytest.fixture(scope="module")
def observed_service(tiny_library):
    """One daemon, every request traced, slow threshold set to catch all."""
    with ThreadedService(tiny_library, slow_ms=1e-6, trace_sample=1) as svc:
        with ServiceClient(port=svc.port) as client:
            maj = TruthTable.majority(3)
            assert client.match(maj)["hit"]
            assert client.match(maj)["cached"]  # second hit: cache path
            client.classify(maj)
            client.ping()
        yield svc


class TestMetricsEndpoint:
    def test_exposition_is_well_formed(self, observed_service):
        status, text = http_get(observed_service.address, "/metrics")
        assert status == 200
        assert "# TYPE repro_service_requests_total counter" in text
        assert "# TYPE repro_service_request_seconds histogram" in text
        lines = [l for l in text.splitlines() if l and not l.startswith("#")]
        for line in lines:  # every sample line is "name[{labels}] value"
            name_part, _, value_part = line.rpartition(" ")
            assert name_part
            float(value_part.replace("+Inf", "inf"))

    def test_series_from_every_layer_present(self, observed_service):
        _, text = http_get(observed_service.address, "/metrics")
        for family in (
            "repro_service_requests_total",  # service
            "repro_cache_match_lookups_total",  # match cache
            "repro_library_match_queries_total",  # library matcher
            "repro_canonical_search_steps_total",  # canonical layer
            "repro_shm_arenas_created_total",  # shm/engine layer
        ):
            assert f"# TYPE {family}" in text

    def test_request_counts_cover_served_ops(self, observed_service):
        _, text = http_get(observed_service.address, "/metrics")
        by_line = dict(
            line.rsplit(" ", 1)
            for line in text.splitlines()
            if line.startswith("repro_service_requests_total{")
        )
        assert float(by_line['repro_service_requests_total{op="match"}']) >= 2
        assert float(by_line['repro_service_requests_total{op="classify"}']) >= 1
        assert float(by_line['repro_service_requests_total{op="ping"}']) >= 1

    def test_prometheus_content_type_header(self, observed_service):
        host, port = observed_service.address.rsplit(":", 1)
        with socket.create_connection((host, int(port)), timeout=10) as sock:
            sock.sendall(b"GET /metrics HTTP/1.0\r\n\r\n")
            raw = b""
            while chunk := sock.recv(65536):
                raw += chunk
        head = raw.split(b"\r\n\r\n", 1)[0].decode("latin-1").lower()
        assert "content-type: text/plain; version=0.0.4" in head


class TestTraceEndpoint:
    def test_recent_traces_have_per_stage_spans(self, observed_service):
        status, body = http_get(
            observed_service.address, "/v1/trace/recent?limit=50"
        )
        assert status == 200
        payload = json.loads(body)
        by_op = {}
        for trace in payload["traces"]:
            by_op.setdefault(trace["op"], trace)
        # The uncached match went through the whole pipeline.
        match_spans = {
            s["name"]
            for t in payload["traces"]
            if t["op"] == "match"
            for s in t["spans"]
        }
        assert {"decode", "queue", "signatures", "match", "reply"} <= match_spans
        classify = by_op["classify"]
        assert {"signatures", "classify"} <= {
            s["name"] for s in classify["spans"]
        }
        for trace in payload["traces"]:
            assert trace["duration_ms"] >= 0
            assert trace["meta"]["transport"] == "ndjson"
            for span in trace["spans"]:
                assert span["duration_ms"] >= 0

    def test_cache_hit_is_annotated_and_skips_engine_stages(
        self, observed_service
    ):
        _, body = http_get(observed_service.address, "/v1/trace/recent")
        cached = [
            t
            for t in json.loads(body)["traces"]
            if t["op"] == "match" and t.get("meta", {}).get("cache") == "hit"
        ]
        assert cached, "expected a cache-hit trace"
        names = {s["name"] for s in cached[0]["spans"]}
        assert "signatures" not in names and "queue" not in names

    def test_slow_ring_and_limit_param(self, observed_service):
        _, body = http_get(observed_service.address, "/v1/trace/recent?limit=1")
        payload = json.loads(body)
        assert len(payload["traces"]) == 1
        assert len(payload["slow"]) == 1  # slow_ms=1e-6: everything is slow
        assert payload["tracer"]["slow_total"] >= 4
        assert payload["tracer"]["slow_ms"] == pytest.approx(1e-6)

    def test_bad_limit_is_a_400(self, observed_service):
        status, body = http_get(
            observed_service.address, "/v1/trace/recent?limit=nope"
        )
        assert status == 400
        assert json.loads(body)["error"]["type"] == "bad_request"


class TestTraceSampling:
    def test_default_daemon_head_samples(self, tiny_library):
        """With the default 1-in-8 sampling, 4 requests yield one trace."""
        with ThreadedService(tiny_library) as svc:
            with ServiceClient(port=svc.port) as client:
                for _ in range(4):
                    client.ping()
            _, body = http_get(svc.address, "/v1/trace/recent")
            payload = json.loads(body)
        assert payload["tracer"]["sample_every"] == 8
        traces = [t for t in payload["traces"] if t["op"] == "ping"]
        assert len(traces) == 1  # the first request; 2-4 unsampled


class TestIdentityBlock:
    def test_identity_in_stats_over_both_fronts(self, observed_service):
        status, body = http_get(observed_service.address, "/v1/stats")
        assert status == 200
        http_identity = json.loads(body)["identity"]
        with ServiceClient(port=observed_service.port) as client:
            ndjson_identity = client.stats()["identity"]
        assert http_identity == ndjson_identity
        assert http_identity["engine"] == "batched"
        assert http_identity["id_scheme"] == "canonical"
        assert http_identity["transports"] == ["ndjson", "http/1.0"]
        assert http_identity["learning"] is False
        assert http_identity["pid"] > 0
        assert http_identity["address"] == observed_service.address
        assert http_identity["slow_ms"] == pytest.approx(1e-6)
        assert http_identity["trace_sample"] == 1


class TestRegistryDeltas:
    def test_requests_and_batches_grow_with_traffic(self, tiny_library):
        reg = obs.registry()
        requests = reg.get("repro_service_requests_total")
        batches = reg.get("repro_service_batches_total")
        lookups = reg.get("repro_cache_match_lookups_total")
        before = (
            requests.value(op="match"),
            batches.value(),
            lookups.value(result="miss"),
        )
        with ThreadedService(tiny_library) as svc:
            with ServiceClient(port=svc.port) as client:
                client.match(TruthTable.majority(3))
        assert requests.value(op="match") == before[0] + 1
        assert batches.value() >= before[1] + 1
        assert lookups.value(result="miss") == before[2] + 1

    def test_disabled_observability_serves_but_records_nothing(
        self, tiny_library
    ):
        reg = obs.registry()
        requests = reg.get("repro_service_requests_total")
        previous = obs.set_enabled(False)
        try:
            before = requests.value(op="match")
            with ThreadedService(tiny_library) as svc:
                with ServiceClient(port=svc.port) as client:
                    assert client.match(TruthTable.majority(3))["hit"]
                _, body = http_get(svc.address, "/v1/trace/recent")
                assert json.loads(body)["traces"] == []
            assert requests.value(op="match") == before
        finally:
            obs.set_enabled(previous)


class TestServiceMetricsThreadSafety:
    def test_concurrent_recording_loses_nothing(self):
        """Batch/mint accounting races the loop's request accounting.

        This is the regression test for the pre-lock ServiceMetrics: the
        coalescer's executor thread records batches and minted classes
        while the event loop records requests and replies; without the
        instance lock, increments were lost under contention.
        """
        metrics = ServiceMetrics()
        rounds, workers = 5_000, 4

        def loop_side():
            for _ in range(rounds):
                metrics.record_request("match")
                metrics.record_reply(0.001)
                metrics.record_cache(hit=False)

        def executor_side():
            for _ in range(rounds):
                metrics.record_batch(8)
                metrics.record_minted()
                metrics.record_error("overloaded")

        threads = [
            threading.Thread(target=loop_side if i % 2 else executor_side)
            for i in range(workers)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        snap = metrics.snapshot()
        per_side = rounds * (workers // 2)
        assert snap["requests_by_op"]["match"] == per_side
        assert snap["replies_ok"] == per_side
        assert snap["cache_misses"] == per_side
        assert snap["batches"] == per_side
        assert snap["batched_requests"] == per_side * 8
        assert snap["classes_minted"] == per_side
        assert snap["errors_by_type"]["overloaded"] == per_side


class TestLatencyWindow:
    def test_maxlen_one_keeps_only_newest(self):
        window = LatencyWindow(maxlen=1)
        for value in (5.0, 1.0, 3.0):
            window.observe(value)
        assert len(window) == 1
        assert window.observed == 3
        assert window.quantile(0.0) == 3.0
        assert window.quantile(0.5) == 3.0
        assert window.quantile(1.0) == 3.0

    def test_extreme_quantiles_are_min_and_max(self):
        window = LatencyWindow(maxlen=16)
        for value in (4.0, 1.0, 3.0, 2.0):
            window.observe(value)
        assert window.quantile(0.0) == 1.0
        assert window.quantile(1.0) == 4.0

    def test_nearest_rank_on_even_window(self):
        window = LatencyWindow(maxlen=16)
        for value in (1.0, 2.0, 3.0, 4.0):
            window.observe(value)
        # round(0.5 * 3) = round(1.5) = 2 under banker's rounding -> 3.0
        assert window.quantile(0.5) == 3.0
        assert window.quantile(0.25) == 2.0

    def test_window_slides_old_samples_out(self):
        window = LatencyWindow(maxlen=2)
        for value in (100.0, 1.0, 2.0):
            window.observe(value)
        assert window.quantile(1.0) == 2.0  # the 100.0 sample fell off

    def test_empty_window_has_no_quantiles(self):
        window = LatencyWindow(maxlen=4)
        assert window.quantile(0.5) is None

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError):
            LatencyWindow(maxlen=0)
        window = LatencyWindow(maxlen=4)
        window.observe(1.0)
        with pytest.raises(ValueError):
            window.quantile(1.5)
        with pytest.raises(ValueError):
            window.quantile(-0.1)
