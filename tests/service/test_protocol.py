"""Protocol layer: framing, parsing, limits, error taxonomy — no sockets."""

import json

import pytest

from repro.core.truth_table import TruthTable
from repro.service import protocol
from repro.service.protocol import (
    MAX_LINE_BYTES,
    ProtocolError,
    parse_request,
    parse_table_payload,
)


class TestParseRequest:
    def test_match_with_hex_and_n(self):
        req = parse_request(b'{"op": "match", "id": 7, "table": "0xe8", "n": 3}')
        assert req.op == "match"
        assert req.id == 7
        assert req.table == TruthTable(3, 0xE8)

    def test_classify_with_binary(self):
        req = parse_request('{"op": "classify", "table": "11101000"}')
        assert req.table == TruthTable.from_binary("11101000")
        assert req.id is None

    def test_stats_and_ping_need_no_table(self):
        assert parse_request('{"op": "stats"}').table is None
        assert parse_request('{"op": "ping", "id": "x"}').id == "x"

    def test_malformed_json_is_bad_request(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse_request(b"{nope")
        assert excinfo.value.error_type == "bad_request"

    def test_non_object_is_bad_request(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse_request(b"[1, 2]")
        assert excinfo.value.error_type == "bad_request"

    def test_unknown_op_names_the_known_ones(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse_request('{"op": "destroy"}')
        assert excinfo.value.error_type == "bad_request"
        assert "classify" in excinfo.value.message
        assert "match" in excinfo.value.message

    def test_oversized_line_is_payload_too_large(self):
        line = b'{"op": "match", "table": "' + b"0" * MAX_LINE_BYTES + b'"}'
        with pytest.raises(ProtocolError) as excinfo:
            parse_request(line)
        assert excinfo.value.error_type == "payload_too_large"

    def test_non_utf8_is_bad_request(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse_request(b'{"op": "match", "table": "\xff\xfe"}')
        assert excinfo.value.error_type == "bad_request"


class TestTablePayload:
    def test_binary(self):
        assert parse_table_payload({"table": "0110"}) == TruthTable(2, 0b0110)

    def test_hex_with_prefix_infers_n(self):
        assert parse_table_payload({"table": "0xe8"}) == TruthTable(3, 0xE8)

    def test_hex_needs_inferable_width(self):
        with pytest.raises(ProtocolError):
            parse_table_payload({"table": "0xe8a"})  # 12 bits

    def test_digit_only_hex_disambiguated_by_n(self):
        # "10" is binary x0 without n, but 0x10 when n=3 says so.
        assert parse_table_payload({"table": "10"}) == TruthTable(1, 0b10)
        assert parse_table_payload({"table": "10", "n": 3}) == TruthTable(3, 0x10)

    def test_binary_consistent_with_n_stays_binary(self):
        assert parse_table_payload({"table": "0110", "n": 2}) == TruthTable(
            2, 0b0110
        )

    def test_missing_or_empty_table(self):
        for payload in ({}, {"table": ""}, {"table": 42}):
            with pytest.raises(ProtocolError) as excinfo:
                parse_table_payload(payload)
            assert excinfo.value.error_type == "bad_request"

    def test_bool_n_rejected(self):
        with pytest.raises(ProtocolError):
            parse_table_payload({"table": "0110", "n": True})

    def test_garbage_rejected(self):
        with pytest.raises(ProtocolError):
            parse_table_payload({"table": "zz"})


class TestReplies:
    def test_ok_reply_echoes_id(self):
        reply = protocol.ok_reply(3, "match", {"hit": False})
        assert reply == {"ok": True, "op": "match", "id": 3, "result": {"hit": False}}

    def test_error_reply_typed(self):
        reply = protocol.error_reply(None, "overloaded", "queue full")
        assert reply["ok"] is False
        assert reply["error"]["type"] == "overloaded"
        assert "id" not in reply

    def test_error_reply_rejects_unknown_type(self):
        with pytest.raises(ValueError):
            protocol.error_reply(None, "weird", "nope")

    def test_encode_line_is_one_json_line(self):
        line = protocol.encode_line({"ok": True})
        assert line.endswith(b"\n")
        assert json.loads(line) == {"ok": True}

    def test_match_payload_roundtrip(self, tiny_library):
        query = TruthTable(3, 0xE8)
        hit = tiny_library.match(query)
        payload = protocol.match_payload(query, hit, cached=True)
        assert payload["hit"] and payload["cached"]
        rep = TruthTable.from_hex(payload["n"], payload["representative"])
        assert rep == hit.representative
        assert payload["transform"] == hit.transform.as_dict()

    def test_match_payload_miss(self):
        payload = protocol.match_payload(TruthTable(3, 0xE8), None, cached=False)
        assert payload == {"hit": False, "n": 3, "cached": False}


class TestHttpResponse:
    def test_shape(self):
        raw = protocol.http_response(200, {"status": "ok"})
        head, _, body = raw.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.0 200 OK\r\n")
        assert b"Content-Type: application/json" in head
        assert json.loads(body) == {"status": "ok"}
        length = int(
            [h for h in head.split(b"\r\n") if h.startswith(b"Content-Length")][0]
            .split(b":")[1]
        )
        assert length == len(body)
