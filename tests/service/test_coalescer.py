"""Coalescer behaviour: batch/timeout boundaries, backpressure, drain.

Tests drive the coalescer directly on a private event loop via
``asyncio.run`` — no sockets, so batch-size assertions are deterministic
where the design makes them so (single-waiter boundaries, stalled-worker
backpressure, drain ordering).
"""

import asyncio

import pytest

from repro.core.truth_table import TruthTable
from repro.service.coalescer import Coalescer
from repro.service.protocol import ProtocolError


def tables(count, n=3, start=1):
    limit = 1 << (1 << n)
    return [TruthTable(n, (start + i) % limit) for i in range(count)]


class TestConstruction:
    def test_rejects_sharded_engine(self, tiny_library):
        with pytest.raises(ValueError) as excinfo:
            Coalescer(tiny_library, engine="sharded")
        assert "perfn" in str(excinfo.value)
        assert "batched" in str(excinfo.value)

    def test_rejects_bad_knobs(self, tiny_library):
        with pytest.raises(ValueError):
            Coalescer(tiny_library, max_batch=0)
        with pytest.raises(ValueError):
            Coalescer(tiny_library, max_wait_ms=-1)
        with pytest.raises(ValueError):
            Coalescer(tiny_library, max_pending=0)


class TestBatching:
    def test_burst_coalesces_into_one_batch(self, tiny_library):
        async def scenario():
            coalescer = Coalescer(
                tiny_library, max_batch=64, max_wait_ms=50.0
            )
            coalescer.start()
            futures = [coalescer.submit("match", tt) for tt in tables(16)]
            results = await asyncio.gather(*futures)
            await coalescer.stop()
            return coalescer, results

        coalescer, results = asyncio.run(scenario())
        # All 16 were queued before the worker could run: one batch.
        assert coalescer.metrics.batches == 1
        assert coalescer.metrics.max_batch_size == 16
        assert len(results) == 16

    def test_max_batch_splits_bursts(self, tiny_library):
        async def scenario():
            coalescer = Coalescer(tiny_library, max_batch=4, max_wait_ms=50.0)
            coalescer.start()
            futures = [coalescer.submit("match", tt) for tt in tables(10)]
            await asyncio.gather(*futures)
            await coalescer.stop()
            return coalescer

        coalescer = asyncio.run(scenario())
        assert coalescer.metrics.batches == 3  # 4 + 4 + 2
        assert coalescer.metrics.max_batch_size == 4

    def test_max_batch_one_disables_coalescing(self, tiny_library):
        async def scenario():
            coalescer = Coalescer(tiny_library, max_batch=1, max_wait_ms=50.0)
            coalescer.start()
            futures = [coalescer.submit("match", tt) for tt in tables(5)]
            await asyncio.gather(*futures)
            await coalescer.stop()
            return coalescer

        coalescer = asyncio.run(scenario())
        assert coalescer.metrics.batches == 5
        assert coalescer.metrics.mean_batch_size == 1.0

    def test_lone_request_released_by_timeout(self, tiny_library):
        async def scenario():
            coalescer = Coalescer(tiny_library, max_batch=1024, max_wait_ms=5.0)
            coalescer.start()
            # One request, nothing else coming: the max_wait deadline —
            # not a full batch — must release it.
            result = await asyncio.wait_for(
                coalescer.submit("match", TruthTable(3, 0xE8)), timeout=5.0
            )
            await coalescer.stop()
            return coalescer, result

        coalescer, (outcome, cached) = asyncio.run(scenario())
        assert coalescer.metrics.batches == 1
        assert not cached
        assert outcome is not None

    def test_zero_wait_still_drains_backlog_greedily(self, tiny_library):
        async def scenario():
            coalescer = Coalescer(tiny_library, max_batch=64, max_wait_ms=0)
            futures = [coalescer.submit("match", tt) for tt in tables(8)]
            coalescer.start()  # everything queued before the worker wakes
            await asyncio.gather(*futures)
            await coalescer.stop()
            return coalescer

        coalescer = asyncio.run(scenario())
        assert coalescer.metrics.batches == 1
        assert coalescer.metrics.max_batch_size == 8


class TestResults:
    def test_match_results_agree_with_offline_library(self, tiny_library):
        queries = tables(20)

        async def scenario():
            coalescer = Coalescer(tiny_library, max_batch=8, max_wait_ms=5.0)
            coalescer.start()
            futures = [coalescer.submit("match", tt) for tt in queries]
            results = await asyncio.gather(*futures)
            await coalescer.stop()
            return results

        results = asyncio.run(scenario())
        for query, (outcome, cached) in zip(queries, results):
            offline = tiny_library.match(query)
            assert not cached
            assert (outcome is None) == (offline is None)
            if outcome is not None:
                assert outcome.class_id == offline.class_id
                assert outcome.verify(query)

    def test_classify_results_and_mixed_ops(self, tiny_library):
        queries = tables(6)

        async def scenario():
            coalescer = Coalescer(tiny_library, max_batch=16, max_wait_ms=5.0)
            coalescer.start()
            classify = [coalescer.submit("classify", tt) for tt in queries]
            match = [coalescer.submit("match", tt) for tt in queries]
            classified = await asyncio.gather(*classify)
            matched = await asyncio.gather(*match)
            await coalescer.stop()
            return classified, matched

        classified, matched = asyncio.run(scenario())
        for query, (class_id, known) in zip(queries, classified):
            offline = tiny_library.lookup(query)
            assert known == (offline is not None)
            if offline is not None:
                assert class_id == offline.class_id
        for (outcome, _), (class_id, known) in zip(matched, classified):
            if known:
                assert outcome is not None and outcome.class_id == class_id

    def test_perfn_engine_serves_correct_answers(self, tiny_library):
        # Both service engines must be usable end-to-end, not just pass
        # construction — a perfn daemon answers like a batched one.
        queries = tables(6)

        async def scenario():
            coalescer = Coalescer(
                tiny_library, engine="perfn", max_batch=8, max_wait_ms=5.0
            )
            coalescer.start()
            futures = [coalescer.submit("match", tt) for tt in queries]
            results = await asyncio.gather(*futures)
            await coalescer.stop()
            return results

        results = asyncio.run(scenario())
        for query, (outcome, _) in zip(queries, results):
            offline = tiny_library.match(query)
            assert outcome is not None and offline is not None
            assert outcome.class_id == offline.class_id
            assert outcome.verify(query)

    def test_mixed_arities_share_a_batch(self, tiny_library):
        queries = tables(4, n=2) + tables(4, n=3)

        async def scenario():
            coalescer = Coalescer(tiny_library, max_batch=16, max_wait_ms=20.0)
            coalescer.start()
            futures = [coalescer.submit("match", tt) for tt in queries]
            results = await asyncio.gather(*futures)
            await coalescer.stop()
            return coalescer, results

        coalescer, results = asyncio.run(scenario())
        assert coalescer.metrics.batches == 1
        for query, (outcome, _) in zip(queries, results):
            assert outcome is not None
            assert outcome.entry.n == query.n
            assert outcome.verify(query)


class TestCacheIntegration:
    def test_second_burst_hits_cache_without_batches(self, tiny_library):
        queries = tables(10)

        async def scenario():
            coalescer = Coalescer(tiny_library, max_batch=64, max_wait_ms=5.0)
            coalescer.start()
            first = await asyncio.gather(
                *[coalescer.submit("match", tt) for tt in queries]
            )
            batches_after_first = coalescer.metrics.batches
            second = await asyncio.gather(
                *[coalescer.submit("match", tt) for tt in queries]
            )
            await coalescer.stop()
            return coalescer, batches_after_first, first, second

        coalescer, batches_after_first, first, second = asyncio.run(scenario())
        assert coalescer.metrics.batches == batches_after_first  # no new work
        assert all(not cached for _, cached in first)
        assert all(cached for _, cached in second)
        assert [o.class_id for o, _ in first] == [o.class_id for o, _ in second]
        assert coalescer.metrics.cache_hits == 10
        assert coalescer.metrics.cache_misses == 10
        assert coalescer.cache.stats.hits == 10

    def test_cache_disabled_by_zero_size(self, tiny_library):
        async def scenario():
            coalescer = Coalescer(
                tiny_library, max_batch=64, max_wait_ms=5.0, cache_size=0
            )
            coalescer.start()
            query = TruthTable(3, 0xE8)
            await coalescer.submit("match", query)
            _, cached = await coalescer.submit("match", query)
            await coalescer.stop()
            return coalescer, cached

        coalescer, cached = asyncio.run(scenario())
        assert not cached
        assert coalescer.metrics.batches == 2


class TestBackpressure:
    def test_overloaded_when_queue_full(self, tiny_library):
        async def scenario():
            # Worker never started: the queue can only fill up.
            coalescer = Coalescer(
                tiny_library, max_pending=3, max_wait_ms=0
            )
            for tt in tables(3):
                coalescer.submit("match", tt)
            with pytest.raises(ProtocolError) as excinfo:
                coalescer.submit("match", TruthTable(3, 0x99))
            return excinfo.value

        error = asyncio.run(scenario())
        assert error.error_type == "overloaded"
        assert "full" in error.message

    def test_overloaded_queue_recovers_after_drain(self, tiny_library):
        async def scenario():
            coalescer = Coalescer(tiny_library, max_pending=3, max_wait_ms=0)
            pending = [coalescer.submit("match", tt) for tt in tables(3)]
            with pytest.raises(ProtocolError):
                coalescer.submit("match", TruthTable(3, 0x99))
            coalescer.start()  # worker drains the backlog
            await asyncio.gather(*pending)
            extra = await coalescer.submit("match", TruthTable(3, 0x99))
            await coalescer.stop()
            return extra

        outcome, _ = asyncio.run(scenario())
        assert outcome is not None


class TestDrain:
    def test_stop_answers_backlog_then_rejects(self, tiny_library):
        async def scenario():
            coalescer = Coalescer(tiny_library, max_batch=4, max_wait_ms=0)
            futures = [coalescer.submit("match", tt) for tt in tables(9)]
            coalescer.start()
            stop_task = asyncio.ensure_future(coalescer.stop())
            await asyncio.sleep(0)  # let stop() mark the coalescer closed
            with pytest.raises(ProtocolError) as excinfo:
                coalescer.submit("match", TruthTable(3, 0x99))
            results = await asyncio.gather(*futures)
            await stop_task
            return excinfo.value, results

        error, results = asyncio.run(scenario())
        assert error.error_type == "shutting_down"
        assert len(results) == 9
        assert all(outcome is not None for outcome, _ in results)

    def test_stop_is_idempotent(self, tiny_library):
        async def scenario():
            coalescer = Coalescer(tiny_library)
            coalescer.start()
            await coalescer.stop()
            await coalescer.stop()

        asyncio.run(scenario())

    def test_stop_survives_compaction_failure(self, tiny_library, caplog):
        # Regression: a drain-time WAL compaction failure (full disk,
        # corrupt segment) used to propagate out of stop(), aborting the
        # server's teardown with the already-answered backlog replies
        # still unsent.  It must be logged and swallowed, the learner
        # still closed, and the backlog fully answered.
        class ExplodingLearner:
            def __init__(self, library):
                self.library = library
                self.closed = False

            def compact(self):
                raise OSError("no space left on device")

            def close(self):
                self.closed = True

        learner = ExplodingLearner(tiny_library)

        async def scenario():
            coalescer = Coalescer(
                tiny_library, max_batch=4, max_wait_ms=0, learner=learner
            )
            futures = [coalescer.submit("match", tt) for tt in tables(9)]
            coalescer.start()
            await coalescer.stop()  # must NOT raise
            return await asyncio.gather(*futures)

        with caplog.at_level("ERROR", logger="repro.service.coalescer"):
            results = asyncio.run(scenario())
        assert len(results) == 9
        assert all(outcome is not None for outcome, _ in results)
        assert learner.closed, "close() must run even when compact() fails"
        assert any(
            "compaction failed" in record.message for record in caplog.records
        )
