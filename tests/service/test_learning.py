"""Service-level learn-on-miss tests.

The contract of ``serve --learn``: the *first* query of an unknown class
is already answered as a verified hit (the coalescer mints in-batch and
upgrades the reply), every identical query after it hits — through the
match cache or, with the cache disabled, through the library itself —
and exactly one class is minted per distinct orbit.  Stopping the
service drains the WAL: segments are compacted into the on-disk image.
"""

import pytest

from repro.core.truth_table import TruthTable
from repro.library import ClassLibrary, LearningLibrary, list_segments
from repro.service import ServiceClient, ThreadedService

MISS = TruthTable.from_hex(6, "deadbeefcafe4242")


@pytest.fixture()
def learner(tiny_library, tmp_path):
    tiny_library.save(tmp_path)
    return LearningLibrary.open(tmp_path)


def serve(learner, **kwargs):
    return ThreadedService(learner.library, learner=learner, **kwargs)


class TestLearnOnMiss:
    def test_second_identical_miss_is_a_verified_cached_hit(self, learner):
        with serve(learner) as svc, ServiceClient(port=svc.port) as client:
            first = client.match(MISS)
            assert first["hit"] and not first["cached"]
            assert ServiceClient.verify(first, MISS)

            second = client.match(MISS)
            assert second["hit"] and second["cached"]
            assert second["class_id"] == first["class_id"]
            assert ServiceClient.verify(second, MISS)

            stats = client.stats()
            assert stats["classes_minted"] == 1
            assert stats["learning"]["classes_minted"] == 1
            assert stats["learning"]["wal_segments"] == 1

    def test_minted_class_survives_cache_disablement(self, learner):
        with serve(learner, cache_size=0) as svc:
            with ServiceClient(port=svc.port) as client:
                first = client.match(MISS)
                second = client.match(MISS)
        # No cache: the second answer had to come from the library the
        # mint grew, and must not have minted again.
        assert first["hit"] and second["hit"]
        assert second["class_id"] == first["class_id"]
        assert not second["cached"]
        assert learner.minted == 1

    def test_npn_image_of_learned_miss_hits_without_second_mint(
        self, learner
    ):
        image = ~MISS.flip_inputs(0b001101)
        with serve(learner) as svc, ServiceClient(port=svc.port) as client:
            client.match(MISS)
            result = client.match(image)
            assert result["hit"]
            assert ServiceClient.verify(result, image)
            assert client.stats()["classes_minted"] == 1

    def test_healthz_advertises_learning(self, learner, tiny_library):
        with serve(learner) as svc:
            assert svc.service.coalescer.learner is learner
        with ThreadedService(tiny_library) as svc:
            assert svc.service.coalescer.learner is None

    def test_without_learner_misses_stay_misses(self, tiny_library):
        with ThreadedService(tiny_library) as svc:
            with ServiceClient(port=svc.port) as client:
                result = client.match(MISS)
                assert result == {"hit": False, "n": 6, "cached": False}
                assert client.stats()["classes_minted"] == 0


class TestDrainCompaction:
    def test_stop_compacts_the_wal(self, learner, tmp_path):
        with serve(learner) as svc:
            with ServiceClient(port=svc.port) as client:
                assert client.match(MISS)["hit"]
            assert len(list_segments(tmp_path)) == 1
        # Drain hook ran: the segment merged into the image.
        assert list_segments(tmp_path) == []
        assert learner.compactions == 1

        reloaded = ClassLibrary.load(tmp_path)
        hit = reloaded.match(MISS)
        assert hit is not None and hit.verify(MISS)

    def test_mismatched_learner_library_is_rejected(self, learner):
        foreign = ClassLibrary()
        with pytest.raises(ValueError):
            ThreadedService(foreign, learner=learner).start()
