"""Shared fixtures of the service-layer tests.

One exhaustive n<=3 library serves the whole module scope — building it
classifies 256 + 16 + 4 functions, cheap enough per session and small
enough that every query can be re-answered offline for parity checks.
"""

import pytest

from repro.library import build_exhaustive_library


@pytest.fixture(scope="session")
def tiny_library():
    library = build_exhaustive_library(2).merged_with(
        build_exhaustive_library(3)
    )
    assert library.num_classes == 4 + 14
    return library
