"""MatchCache accounting and ServiceMetrics readout."""

import pytest

from repro.core.truth_table import TruthTable
from repro.service.cache import MatchCache
from repro.service.metrics import LatencyWindow, ServiceMetrics


class TestMatchCache:
    def test_miss_then_hit(self, tiny_library):
        cache = MatchCache(maxsize=8)
        query = TruthTable(3, 0xE8)
        found, _ = cache.get(query)
        assert not found
        outcome = tiny_library.match(query)
        cache.put(query, outcome)
        found, cached = cache.get(query)
        assert found and cached is outcome
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.5

    def test_negative_outcome_is_cached(self):
        cache = MatchCache(maxsize=8)
        query = TruthTable(3, 0xE8)
        cache.put(query, None)
        found, outcome = cache.get(query)
        assert found and outcome is None

    def test_key_distinguishes_arity(self):
        cache = MatchCache(maxsize=8)
        cache.put(TruthTable(2, 0b0110), None)
        found, _ = cache.get(TruthTable.from_binary("0110").extend(3))
        assert not found

    def test_lru_eviction(self):
        cache = MatchCache(maxsize=2)
        a, b, c = (TruthTable(3, bits) for bits in (1, 2, 3))
        cache.put(a, None)
        cache.put(b, None)
        cache.get(a)  # refresh a; b is now LRU
        cache.put(c, None)
        assert cache.stats.evictions == 1
        assert cache.get(b) == (False, None)
        assert cache.get(a)[0] and cache.get(c)[0]

    def test_zero_size_disables(self):
        cache = MatchCache(maxsize=0)
        query = TruthTable(3, 0xE8)
        cache.put(query, None)
        assert cache.get(query) == (False, None)
        assert len(cache) == 0

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            MatchCache(maxsize=-1)


class TestLatencyWindow:
    def test_quantiles_exact_on_small_window(self):
        window = LatencyWindow(maxlen=100)
        for value in [0.5, 0.1, 0.3, 0.2, 0.4]:
            window.observe(value)
        assert window.quantile(0.0) == 0.1
        assert window.quantile(0.5) == 0.3
        assert window.quantile(1.0) == 0.5

    def test_empty_window_returns_none(self):
        assert LatencyWindow().quantile(0.5) is None

    def test_window_slides(self):
        window = LatencyWindow(maxlen=2)
        for value in (1.0, 2.0, 3.0):
            window.observe(value)
        assert window.quantile(0.0) == 2.0
        assert window.observed == 3
        assert len(window) == 2

    def test_bad_inputs(self):
        with pytest.raises(ValueError):
            LatencyWindow(maxlen=0)
        with pytest.raises(ValueError):
            LatencyWindow().quantile(1.5)


class TestServiceMetrics:
    def test_snapshot_fields(self):
        metrics = ServiceMetrics()
        metrics.record_request("match")
        metrics.record_request("match")
        metrics.record_request("stats")
        metrics.record_batch(2)
        metrics.record_batch(4)
        metrics.record_cache(True)
        metrics.record_cache(False)
        metrics.record_reply(0.010)
        metrics.record_reply(0.030)
        metrics.record_error("overloaded")
        snap = metrics.snapshot()
        assert snap["requests_total"] == 3
        assert snap["requests_by_op"] == {"match": 2, "stats": 1}
        assert snap["batches"] == 2
        assert snap["mean_batch_size"] == 3.0
        assert snap["max_batch_size"] == 4
        assert snap["cache_hit_rate"] == 0.5
        assert snap["errors_by_type"] == {"overloaded": 1}
        assert snap["latency_p50_ms"] == pytest.approx(10.0, rel=0.5)
        assert snap["latency_p99_ms"] == pytest.approx(30.0, rel=0.5)
        assert snap["uptime_s"] >= 0

    def test_empty_snapshot_is_serializable(self):
        import json

        snap = ServiceMetrics().snapshot()
        assert snap["mean_batch_size"] == 0.0
        assert snap["cache_hit_rate"] == 0.0
        assert snap["latency_p50_ms"] is None
        json.dumps(snap)
