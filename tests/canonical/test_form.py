"""Exactness of the canonical form: parity with the enumeration oracle.

One rule at every arity — the canonical representative is the orbit
minimum.  The kernel path (n <= 6) and the influence-guided scalar
search must both be byte-identical to
:func:`repro.baselines.exact_enum.exact_npn_canonical`:

* exhaustively at n <= 3 (every one of the 2^(2^n) functions, both
  paths);
* over the full n = 4 space via the batched kernel (unique canonical
  forms must count exactly the 222 classical NPN classes), with a
  strided oracle slice;
* on random samples at n = 4..5 for the scalar path;
* at n = 7 (beyond the kernels) via orbit invariance + witness checks,
  where no enumeration oracle is feasible.
"""

import random

import pytest

from repro.baselines.exact_enum import exact_npn_canonical
from repro.baselines.matcher import find_npn_transform
from repro.canonical.form import (
    canonical_class_id,
    canonical_form,
    canonical_forms,
    influence_canonical_scalar,
    parse_canonical_class_id,
)
from repro.core.transforms import random_transform
from repro.core.truth_table import TruthTable

#: NPN class counts over all n-variable functions (OEIS A000370).
KNOWN_NPN_CLASSES = {0: 1, 1: 2, 2: 4, 3: 14, 4: 222}


class TestSmallArityParity:
    @pytest.mark.parametrize("n", [1, 2, 3])
    def test_exhaustive_scalar_and_kernel_match_oracle(self, n):
        tables = [TruthTable(n, bits) for bits in range(1 << (1 << n))]
        kernel = canonical_forms(tables, n)
        for tt, via_kernel in zip(tables, kernel):
            oracle = exact_npn_canonical(tt).representative
            assert via_kernel == oracle
            assert influence_canonical_scalar(tt) == oracle

    def test_exhaustive_n3_class_count(self):
        tables = [TruthTable(3, bits) for bits in range(256)]
        forms = canonical_forms(tables, 3)
        assert len(set(forms)) == KNOWN_NPN_CLASSES[3]

    def test_full_n4_space_has_222_classes(self):
        forms = canonical_forms(range(1 << 16), 4)
        assert len(set(forms)) == KNOWN_NPN_CLASSES[4]
        # Idempotence over the whole space: a canonical form is its own
        # canonical form.
        unique = sorted({form.bits for form in forms})
        again = canonical_forms(unique, 4)
        assert [form.bits for form in again] == unique

    def test_strided_n4_oracle_slice(self):
        for bits in range(0, 1 << 16, 257):
            tt = TruthTable(4, bits)
            assert (
                canonical_form(tt)
                == exact_npn_canonical(tt).representative
            )


class TestScalarSearch:
    @pytest.mark.parametrize("n", [4, 5])
    def test_sampled_scalar_matches_kernel(self, n):
        rng = random.Random(50 + n)
        for _ in range(12):
            tt = TruthTable.random(n, rng)
            assert influence_canonical_scalar(tt) == canonical_form(tt)

    def test_stats_counters_accumulate(self):
        stats: dict = {}
        tt = TruthTable.random(5, random.Random(51))
        influence_canonical_scalar(tt, stats=stats)
        assert stats["permutations"] == 2 * 120  # both output phases
        assert stats["phase_candidates"] == 2 * 120 * 32
        assert 0 < stats["phases_materialized"] <= stats["phase_candidates"]

    def test_n7_top_word_bound_prunes(self):
        # Beyond the kernels: the incumbent's most-significant word must
        # reject almost every phase candidate without materializing it.
        stats: dict = {}
        tt = TruthTable.random(7, random.Random(52))
        rep = influence_canonical_scalar(tt, stats=stats)
        assert stats["phases_materialized"] < stats["phase_candidates"] // 100
        # Membership + minimality evidence: the rep is in the orbit and
        # no smaller than any sampled orbit member.
        assert find_npn_transform(tt, rep) is not None
        assert rep.bits <= tt.bits

    def test_n7_orbit_invariance(self):
        rng = random.Random(53)
        tt = TruthTable.random(7, rng)
        rep = canonical_form(tt)
        image = tt.apply(random_transform(7, rng))
        assert canonical_form(image) == rep

    def test_n0_constant_orbit(self):
        assert influence_canonical_scalar(TruthTable(0, 1)) == TruthTable(0, 0)
        assert canonical_form(TruthTable(0, 0)) == TruthTable(0, 0)


class TestBatchApi:
    def test_empty_batch(self):
        assert canonical_forms([], 5) == []

    def test_mixed_arities_rejected(self):
        with pytest.raises(ValueError, match="mixed arities"):
            canonical_forms([TruthTable(3, 1), TruthTable(4, 1)])

    def test_raw_ints_need_n(self):
        with pytest.raises(ValueError, match="pass n"):
            canonical_forms([1, 2, 3])

    def test_scalar_batch_dedups_by_bits(self):
        tt = TruthTable.random(7, random.Random(54))
        forms = canonical_forms([tt, tt, tt])
        assert forms[0] == forms[1] == forms[2]


class TestClassIds:
    def test_id_is_pure_function_of_rep(self):
        rep = canonical_form(TruthTable.majority(3))
        assert canonical_class_id(rep) == "n3-c17"

    def test_roundtrip(self):
        rng = random.Random(55)
        for n in (3, 5, 7):
            rep = canonical_form(TruthTable.random(n, rng))
            class_id = canonical_class_id(rep)
            assert parse_canonical_class_id(class_id) == rep

    @pytest.mark.parametrize(
        "bad",
        [
            "n5-0011223344556677",  # digest id, no -c marker
            "n5-0011223344556677-1",  # digest overflow slot
            "x5-c17",  # head is not n<int>
            "n5-c",  # empty payload
            "n5-czz",  # non-hex payload
            "nx-c17",  # non-integer arity
            "",
        ],
    )
    def test_malformed_ids_parse_to_none(self, bad):
        assert parse_canonical_class_id(bad) is None
