"""Influence vectors and the influence-sorted permutation order.

The ordering layer must be a pure *search order*: every permutation of
the group appears exactly once, the order is deterministic, and the
promising (non-decreasing-arrangement) candidates genuinely come first.
Exactness of the canonicalizer never depends on any of this — these
tests pin the ordering contract on its own.
"""

import itertools
import random

from repro.canonical.influence import (
    arrangement_of,
    candidate_permutations,
    influence_vector,
)
from repro.core.characteristics import influences
from repro.core.transforms import random_transform
from repro.core.truth_table import TruthTable


def _non_decreasing(values):
    return all(a <= b for a, b in zip(values, values[1:]))


class TestInfluenceVector:
    def test_matches_core_characteristics(self):
        rng = random.Random(1)
        for n in (3, 4, 5):
            for _ in range(10):
                tt = TruthTable.random(n, rng)
                assert influence_vector(tt) == influences(tt)

    def test_multiset_is_npn_invariant(self):
        rng = random.Random(2)
        for n in (3, 4, 5):
            tt = TruthTable.random(n, rng)
            reference = sorted(influence_vector(tt))
            for _ in range(8):
                image = tt.apply(random_transform(n, rng))
                assert sorted(influence_vector(image)) == reference


class TestArrangement:
    def test_relabeling_semantics(self):
        # g = f o perm maps f's variable i to g's variable perm[i], so
        # the arrangement reads f's influence i at position perm[i].
        infl = (5, 1, 3)
        perm = (2, 0, 1)
        arranged = arrangement_of(infl, perm)
        for i, target in enumerate(perm):
            assert arranged[target] == infl[i]

    def test_arrangement_agrees_with_actual_permute(self):
        rng = random.Random(3)
        for n in (3, 4):
            tt = TruthTable.random(n, rng)
            infl = influence_vector(tt)
            for perm in itertools.permutations(range(n)):
                assert arrangement_of(infl, perm) == influence_vector(
                    tt.permute(perm)
                )


class TestCandidateOrder:
    def test_full_group_exactly_once(self):
        for infl in ((2, 2, 2), (0, 1, 2), (4, 4, 0, 2)):
            perms = candidate_permutations(infl)
            n = len(infl)
            assert sorted(perms) == sorted(itertools.permutations(range(n)))

    def test_first_candidate_sorts_influence_non_decreasing(self):
        rng = random.Random(4)
        for n in (3, 4, 5):
            infl = influence_vector(TruthTable.random(n, rng))
            first = candidate_permutations(infl)[0]
            assert arrangement_of(infl, first) == tuple(sorted(infl))

    def test_non_decreasing_block_is_a_prefix(self):
        infl = (3, 1, 2, 1)
        flags = [
            _non_decreasing(arrangement_of(infl, perm))
            for perm in candidate_permutations(infl)
        ]
        # Once a non-monotone arrangement appears, no monotone one follows.
        assert flags == sorted(flags, reverse=True)

    def test_order_is_deterministic(self):
        infl = (7, 0, 7, 3)
        assert candidate_permutations(infl) == candidate_permutations(
            tuple(infl)
        )

    def test_numpy_influences_normalize(self):
        import numpy as np

        infl = tuple(np.array([2, 2, 2], dtype=np.int64))
        assert candidate_permutations(infl) == candidate_permutations(
            (2, 2, 2)
        )
