"""The hybrid canonical engine: exact classes, signature-engine parity.

The acceptance contract of the PR: on any n <= 6 workload the canonical
engine produces *byte-identical* class buckets to the batched signature
engine (the signatures are perfect discriminators there), every class id
is a pure function of the orbit, and the signature pre-filter decides
the overwhelming share of functions without an exact canonicalization.
"""

import random

import pytest

from repro.canonical.engine import CanonicalClass, CanonicalClassifier
from repro.canonical.form import canonical_class_id
from repro.core.truth_table import TruthTable
from repro.engine import BatchedClassifier, PackedTables, make_classifier
from repro.workloads.random_functions import (
    random_tables,
    seeded_equivalent_tables,
)


def partition(result):
    """Engine-independent view of a classification: member groups."""
    return sorted(
        tuple(sorted(tt.bits for tt in members))
        for members in result.groups.values()
    )


class TestFactory:
    def test_factory_builds_canonical_engine(self):
        assert isinstance(make_classifier("canonical"), CanonicalClassifier)

    def test_parts_pass_through(self):
        clf = make_classifier("canonical", parts=("c0", "oiv"))
        assert clf.parts == ("c0", "oiv")


class TestExactness:
    @pytest.mark.parametrize("n", [4, 5, 6])
    def test_buckets_match_batched_engine(self, n):
        tables, _ = seeded_equivalent_tables(n, orbits=12, members_per_orbit=4, seed=n)
        canonical = CanonicalClassifier().classify(tables)
        batched = BatchedClassifier().classify(tables)
        assert canonical.num_classes == batched.num_classes
        assert partition(canonical) == partition(batched)

    def test_exhaustive_n3_counts(self):
        tables = [TruthTable(3, bits) for bits in range(256)]
        result = CanonicalClassifier().classify(tables)
        assert result.num_classes == 14

    def test_keys_are_canonical_classes_with_portable_ids(self):
        tables, _ = seeded_equivalent_tables(5, orbits=6, members_per_orbit=3, seed=9)
        result = CanonicalClassifier().classify(tables)
        for key, members in result.groups.items():
            assert isinstance(key, CanonicalClass)
            assert key.class_id == canonical_class_id(key.table)
            # The key really is a member of its own class's orbit: it is
            # the canonical form of every member.
            clf = CanonicalClassifier()
            for tt in members:
                assert clf.canonical(tt) == key.table

    def test_ids_identical_across_independent_runs(self):
        # Two engines, two input orders, same orbits: identical id sets.
        tables, _ = seeded_equivalent_tables(5, orbits=8, members_per_orbit=3, seed=10)
        ids_a = {k.class_id for k in CanonicalClassifier().classify(tables).groups}
        reversed_tables = list(reversed(tables))
        ids_b = {
            k.class_id
            for k in CanonicalClassifier().classify(reversed_tables).groups
        }
        assert ids_a == ids_b

    def test_packed_input(self):
        tables = random_tables(5, 64, 11)
        packed = PackedTables.from_tables(tables)
        assert partition(CanonicalClassifier().classify(packed)) == partition(
            CanonicalClassifier().classify(tables)
        )

    def test_buckets_digest_works_on_canonical_keys(self):
        tables = random_tables(4, 32, 12)
        digest_a = CanonicalClassifier().classify(tables).buckets_digest()
        digest_b = CanonicalClassifier().classify(tables).buckets_digest()
        assert digest_a == digest_b


class TestStats:
    def test_one_canonicalization_per_class(self):
        tables, _ = seeded_equivalent_tables(5, orbits=5, members_per_orbit=6, seed=13)
        clf = CanonicalClassifier()
        result = clf.classify(tables)
        assert clf.stats.functions == len(tables)
        assert clf.stats.classes == result.num_classes
        assert clf.stats.canonical_calls == result.num_classes
        assert clf.stats.pruned_fraction == 1.0 - (
            result.num_classes / len(tables)
        )

    def test_repeat_traffic_is_fully_pruned(self):
        clf = CanonicalClassifier()
        tables = random_tables(5, 16, 14)
        clf.classify(tables)
        first_calls = clf.stats.canonical_calls
        clf.classify(tables)  # same orbits: every form is LRU-cached
        assert clf.stats.canonical_calls == first_calls

    def test_stats_as_dict_shape(self):
        clf = CanonicalClassifier()
        clf.classify(random_tables(4, 8, 15))
        payload = clf.stats.as_dict()
        assert set(payload) == {
            "functions",
            "classes",
            "canonical_calls",
            "matcher_calls",
            "pruned_fraction",
        }

    def test_empty_workload(self):
        clf = CanonicalClassifier()
        assert clf.classify([]).num_classes == 0
        assert clf.stats.pruned_fraction == 0.0
