"""Hypothesis: the canonical form is constant on every NPN orbit.

``canonical_form`` must be a *function of the orbit*: applying any NPN
transform to the input must not change the output, at the arities the
library actually serves (n = 5..6, where the scalar/kernel split and
the influence ordering both matter).  Images are built through
``TruthTable`` primitives — not the transform algebra — mirroring
:mod:`tests.properties.test_npn_invariance`.
"""

from hypothesis import given, settings

from repro.canonical.form import canonical_class_id, canonical_form
from tests.strategies import npn_orbits


@settings(max_examples=40, deadline=None)
@given(orbit=npn_orbits(min_n=5, max_n=6, max_images=3))
def test_canonical_form_is_orbit_invariant(orbit):
    seed_function, images = orbit
    rep = canonical_form(seed_function)
    for image in images:
        assert canonical_form(image) == rep


@settings(max_examples=25, deadline=None)
@given(orbit=npn_orbits(min_n=5, max_n=6, max_images=2))
def test_class_id_is_orbit_invariant(orbit):
    seed_function, images = orbit
    class_id = canonical_class_id(canonical_form(seed_function))
    for image in images:
        assert canonical_class_id(canonical_form(image)) == class_id
