"""Tests for the benchmark suite, extraction pipeline, and random sets."""

import pytest

from repro.aig.builders import ripple_adder
from repro.core.truth_table import TruthTable
from repro.workloads.epfl import (
    ARITHMETIC,
    CONTROL,
    category_of,
    epfl_like_suite,
    suite_summary,
)
from repro.workloads.batched import packed_shards
from repro.workloads.extraction import extract_cut_functions, extraction_report
from repro.workloads.random_functions import (
    consecutive_tables,
    hit_miss_queries,
    iter_random_tables,
    random_tables,
    seeded_equivalent_tables,
)


class TestSuite:
    def test_suite_builds(self):
        suite = epfl_like_suite(scale=1)
        assert len(suite) >= 12
        for name, aig in suite.items():
            assert aig.num_inputs > 0, name
            assert aig.num_outputs > 0, name

    def test_both_categories_present(self):
        suite = epfl_like_suite(scale=1)
        categories = {category_of(name) for name in suite}
        assert categories == {ARITHMETIC, CONTROL}

    def test_summary_rows(self):
        suite = epfl_like_suite(scale=1)
        rows = suite_summary(suite)
        assert len(rows) == len(suite)
        assert {row["name"] for row in rows} == set(suite)
        for row in rows:
            assert row["ands"] >= 0
            assert row["depth"] >= 1

    def test_scale_validation(self):
        with pytest.raises(ValueError):
            epfl_like_suite(scale=0)

    def test_scale_grows_circuits(self):
        small = epfl_like_suite(scale=1)["adder"]
        large = epfl_like_suite(scale=2)["adder"]
        assert large.num_ands > small.num_ands


class TestExtraction:
    def test_extract_from_adder(self):
        functions = extract_cut_functions(ripple_adder(6), sizes=[3, 4, 5])
        assert set(functions) == {3, 4, 5}
        for n, tables in functions.items():
            assert all(tt.n == n for tt in tables)
            # Deduplication: all tables distinct.
            assert len({tt.bits for tt in tables}) == len(tables)

    def test_extract_multiple_circuits_dedupes_across(self):
        one = extract_cut_functions(ripple_adder(6), sizes=[4])
        two = extract_cut_functions(
            [ripple_adder(6), ripple_adder(6)], sizes=[4]
        )
        assert len(two[4]) == len(one[4])

    def test_limit_per_size(self):
        functions = extract_cut_functions(
            ripple_adder(8), sizes=[4, 5], limit_per_size=7
        )
        assert all(len(tables) <= 7 for tables in functions.values())

    def test_extracted_functions_contain_known_logic(self):
        """An adder's 3-cuts include MAJ3 or XOR3 (carry/sum logic)."""
        functions = extract_cut_functions(ripple_adder(6), sizes=[3])
        from repro.baselines.matcher import are_npn_equivalent

        maj = TruthTable.majority(3)
        xor3 = TruthTable.from_function(3, lambda a, b, c: a ^ b ^ c)
        found_maj = any(are_npn_equivalent(tt, maj) for tt in functions[3])
        found_xor = any(are_npn_equivalent(tt, xor3) for tt in functions[3])
        assert found_maj and found_xor

    def test_size_validation(self):
        with pytest.raises(ValueError):
            extract_cut_functions(ripple_adder(4), sizes=[])
        with pytest.raises(ValueError):
            extract_cut_functions(ripple_adder(4), sizes=[0])

    def test_report(self):
        functions = extract_cut_functions(ripple_adder(6), sizes=[4])
        rows = extraction_report(functions)
        assert rows[0]["n"] == 4
        assert rows[0]["functions"] == len(functions[4])
        assert 0 <= rows[0]["balanced"] <= rows[0]["functions"]


class TestRandomSets:
    def test_random_tables_deterministic(self):
        assert random_tables(5, 10, seed=3) == random_tables(5, 10, seed=3)
        assert random_tables(5, 10, seed=3) != random_tables(5, 10, seed=4)

    def test_consecutive_tables(self):
        tables = consecutive_tables(4, 5, start=10)
        assert [tt.bits for tt in tables] == [10, 11, 12, 13, 14]

    def test_consecutive_wraps(self):
        tables = consecutive_tables(2, 4, start=14)
        assert [tt.bits for tt in tables] == [14, 15, 0, 1]

    def test_consecutive_needs_seed_or_start(self):
        with pytest.raises(ValueError):
            consecutive_tables(4, 5)
        by_seed = consecutive_tables(4, 5, seed=1)
        assert len(by_seed) == 5

    def test_seeded_equivalents_class_count(self):
        from repro.baselines.exact import ExactClassifier

        tables, upper = seeded_equivalent_tables(
            4, orbits=8, members_per_orbit=4, seed=5
        )
        assert len(tables) == 32
        exact = ExactClassifier().count_classes(tables)
        assert exact <= upper
        assert exact >= 1

    def test_iter_random_tables_matches_list_form(self):
        lazy = iter_random_tables(5, 20, seed=6)
        assert not isinstance(lazy, list)  # genuinely a generator
        assert list(lazy) == random_tables(5, 20, seed=6)


class TestHitMissQueries:
    def test_deterministic_and_sized(self):
        corpus_a, queries_a = hit_miss_queries(5, 30, 20, seed=11)
        corpus_b, queries_b = hit_miss_queries(5, 30, 20, seed=11)
        assert corpus_a == corpus_b and queries_a == queries_b
        assert len(corpus_a) == 30 and len(queries_a) == 50
        assert corpus_a == random_tables(5, 30, seed=11)

    def test_hits_require_real_witness_searches(self):
        """Hit queries are NPN images of corpus tables, not the tables
        themselves — the library identity short-circuit must not fire."""
        from repro.library import build_library

        corpus, queries = hit_miss_queries(5, 25, 25, seed=12)
        library = build_library(corpus)
        outcomes = library.match_many(queries)
        hits = [o for o in outcomes if o is not None]
        assert len(hits) >= 25  # every planted image resolves
        for query, outcome in zip(queries, outcomes):
            if outcome is not None:
                assert outcome.verify(query)


class TestPackedShards:
    def test_shard_sizes_and_order(self):
        tables = random_tables(4, 10, seed=7)
        shards = list(packed_shards(iter(tables), shard_size=4))
        assert [len(shard) for shard in shards] == [4, 4, 2]
        flattened = [tt for shard in shards for tt in shard.to_tables()]
        assert flattened == tables

    def test_exact_multiple_has_no_runt_shard(self):
        shards = list(packed_shards(random_tables(3, 6, seed=8), shard_size=3))
        assert [len(shard) for shard in shards] == [3, 3]

    def test_empty_stream_yields_nothing(self):
        assert list(packed_shards(iter(()), shard_size=4)) == []

    def test_rejects_nonpositive_shard_size(self):
        with pytest.raises(ValueError):
            list(packed_shards(random_tables(3, 2, seed=9), shard_size=0))


class TestMissHeavyQueries:
    """Traffic for the learn-on-miss path: verified misses, planted hits."""

    @pytest.fixture(scope="class")
    def lib3(self):
        from repro.library import build_exhaustive_library

        return build_exhaustive_library(3)

    def test_misses_verifiably_miss_and_hits_verifiably_hit(self, lib3):
        from repro.workloads.learning import miss_heavy_queries

        queries = miss_heavy_queries(lib3, 6, 20, seed=21, miss_fraction=0.75)
        assert len(queries) == 20
        outcomes = lib3.match_many(queries)
        assert sum(o is None for o in outcomes) == 20  # no n=6 classes stored

        mixed = miss_heavy_queries(lib3, 3, 12, seed=22, miss_fraction=0.0)
        for query, outcome in zip(mixed, lib3.match_many(mixed)):
            assert outcome is not None and outcome.verify(query)

    def test_all_miss_when_library_lacks_the_arity(self, lib3):
        from repro.workloads.learning import miss_heavy_queries

        queries = miss_heavy_queries(lib3, 5, 10, seed=23, miss_fraction=0.1)
        assert all(lib3.lookup(tt) is None for tt in queries)

    def test_deterministic(self, lib3):
        from repro.workloads.learning import miss_heavy_queries

        assert miss_heavy_queries(lib3, 5, 15, seed=24) == miss_heavy_queries(
            lib3, 5, 15, seed=24
        )

    def test_exact_mint_count_under_learning(self, lib3, tmp_path):
        """The advertised contract: miss count == classes a learner mints."""
        from repro.library import LearningLibrary
        from repro.workloads.learning import miss_heavy_queries, with_repeats

        lib3.save(tmp_path)
        learner = LearningLibrary.open(tmp_path)
        misses = miss_heavy_queries(lib3, 5, 6, seed=25, miss_fraction=1.0)
        distinct = {learner.learn(tt).class_id for tt in misses}
        assert learner.minted == len(distinct)
        for tt in with_repeats(misses, repeats=2, seed=26):
            hit = learner.library.match(tt)
            assert hit is not None and hit.verify(tt)
        assert learner.minted == len(distinct)

    def test_with_repeats_shape(self):
        from repro.workloads.learning import with_repeats

        queries = random_tables(4, 5, seed=27)
        doubled = with_repeats(queries, repeats=3, seed=28)
        assert len(doubled) == 15
        assert sorted(map(repr, doubled)) == sorted(
            map(repr, queries * 3)
        )
        assert with_repeats(queries, 3, seed=28) == doubled

    def test_rejects_bad_arguments(self):
        from repro.workloads.learning import miss_heavy_queries, with_repeats
        from repro.library import ClassLibrary

        with pytest.raises(ValueError):
            miss_heavy_queries(ClassLibrary(), 4, -1, seed=0)
        with pytest.raises(ValueError):
            miss_heavy_queries(ClassLibrary(), 4, 5, seed=0, miss_fraction=1.5)
        with pytest.raises(ValueError):
            with_repeats([], repeats=0, seed=0)
