"""Tests for the signature-guided exact canonicaliser (paper future work)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.exact import ExactClassifier
from repro.baselines.exact_enum import ExactEnumerationClassifier
from repro.baselines.guided import (
    GuidedExactClassifier,
    guided_exact_canonical,
    search_space_size,
)
from repro.baselines.matcher import are_npn_equivalent
from repro.core.transforms import group_order, random_transform
from repro.core.truth_table import TruthTable


class TestExactness:
    def test_known_class_counts(self):
        for n, expected in ((1, 2), (2, 4), (3, 14)):
            tables = [TruthTable(n, b) for b in range(1 << (1 << n))]
            assert GuidedExactClassifier().count_classes(tables) == expected

    @pytest.mark.slow
    def test_known_class_count_n4(self):
        tables = (TruthTable(4, b) for b in range(1 << 16))
        assert GuidedExactClassifier().count_classes(tables) == 222

    @pytest.mark.parametrize("n", [3, 4, 5])
    def test_orbit_invariance(self, n):
        rng = random.Random(n * 11)
        for _ in range(12):
            tt = TruthTable.random(n, rng)
            reference = guided_exact_canonical(tt)
            for _ in range(5):
                image = tt.apply(random_transform(n, rng))
                assert guided_exact_canonical(image) == reference

    def test_canonical_is_orbit_member(self):
        rng = random.Random(3)
        for _ in range(15):
            tt = TruthTable.random(4, rng)
            assert are_npn_equivalent(tt, guided_exact_canonical(tt))

    @pytest.mark.parametrize("n", [4, 5])
    def test_agrees_with_exact_engine(self, n):
        rng = random.Random(n * 29)
        tables = [TruthTable.random(n, rng) for _ in range(80)]
        tables += [t.apply(random_transform(n, rng)) for t in tables[:30]]
        assert GuidedExactClassifier().count_classes(tables) == (
            ExactClassifier().count_classes(tables)
        )

    def test_completeness_on_nonequivalent_pairs(self):
        rng = random.Random(17)
        for _ in range(25):
            a = TruthTable.random(4, rng)
            b = TruthTable.random(4, rng)
            same_canon = guided_exact_canonical(a) == guided_exact_canonical(b)
            assert same_canon == are_npn_equivalent(a, b)


class TestHardCases:
    def test_constants(self):
        zero = TruthTable.constant(4, 0)
        one = TruthTable.constant(4, 1)
        assert guided_exact_canonical(zero) == guided_exact_canonical(one)
        assert guided_exact_canonical(TruthTable(0, 1)) == TruthTable(0, 0)

    def test_fully_symmetric_functions_are_cheap(self):
        """Symmetric tie blocks collapse: MAJ5 needs a tiny search."""
        maj5 = TruthTable.majority(5)
        assert search_space_size(maj5) <= 8
        assert guided_exact_canonical(maj5) == guided_exact_canonical(
            maj5.permute((4, 2, 0, 3, 1))
        )

    def test_xor_all_phases_undecided(self):
        """XOR ties every cofactor count; the search stays exact anyway."""
        xor4 = TruthTable.from_function(4, lambda *x: x[0] ^ x[1] ^ x[2] ^ x[3])
        rng = random.Random(5)
        reference = guided_exact_canonical(xor4)
        for _ in range(5):
            assert guided_exact_canonical(xor4.apply(random_transform(4, rng))) == (
                reference
            )

    def test_bent_function(self):
        bent = TruthTable.from_function(4, lambda a, b, c, d: (a & b) ^ (c & d))
        rng = random.Random(6)
        reference = guided_exact_canonical(bent)
        for _ in range(5):
            assert guided_exact_canonical(bent.apply(random_transform(4, rng))) == (
                reference
            )


class TestSearchSpace:
    def test_much_smaller_than_kitty(self):
        rng = random.Random(7)
        sizes = [
            search_space_size(TruthTable.random(6, rng)) for _ in range(50)
        ]
        # Random functions have near-unique variable keys: tiny searches.
        assert max(sizes) < group_order(6) // 100
        assert sum(sizes) / len(sizes) < 64

    def test_search_space_positive(self):
        assert search_space_size(TruthTable(0, 1)) == 1
        assert search_space_size(TruthTable.constant(3, 0)) >= 1


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=1, max_value=5), st.randoms(use_true_random=False))
def test_property_guided_matches_enumeration_equivalence(n, rng):
    """guided(f) == guided(g) exactly when the enumeration engine agrees."""
    a = TruthTable(n, rng.getrandbits(1 << n))
    b = TruthTable(n, rng.getrandbits(1 << n))
    enumeration = ExactEnumerationClassifier()
    assert (guided_exact_canonical(a) == guided_exact_canonical(b)) == (
        enumeration.key(a) == enumeration.key(b)
    )
