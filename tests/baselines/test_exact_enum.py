"""Tests for exhaustive exact NPN canonicalisation."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.exact_enum import (
    ExactEnumerationClassifier,
    exact_npn_canonical,
    exact_npn_canonical_reference,
)
from repro.core.transforms import all_transforms, random_transform
from repro.core.truth_table import TruthTable


class TestCanonicalForm:
    @pytest.mark.parametrize("n", range(1, 4))
    def test_matches_brute_force_oracle(self, n):
        rng = random.Random(n * 5)
        for _ in range(15):
            tt = TruthTable.random(n, rng)
            form = exact_npn_canonical(tt)
            assert form.representative == exact_npn_canonical_reference(tt)

    @pytest.mark.parametrize("n", range(1, 5))
    def test_transform_witnesses_canonical(self, n):
        rng = random.Random(n * 9)
        for _ in range(15):
            tt = TruthTable.random(n, rng)
            form = exact_npn_canonical(tt)
            assert form.verify(tt)

    @pytest.mark.parametrize("n", range(1, 5))
    def test_constant_on_orbit(self, n):
        """Every member of an orbit canonicalises identically."""
        rng = random.Random(n * 13)
        tt = TruthTable.random(n, rng)
        reference = exact_npn_canonical(tt).representative
        for _ in range(10):
            image = tt.apply(random_transform(n, rng))
            assert exact_npn_canonical(image).representative == reference

    def test_canonical_is_orbit_minimum(self):
        rng = random.Random(21)
        tt = TruthTable.random(3, rng)
        rep = exact_npn_canonical(tt).representative
        orbit = {tt.apply(t) for t in all_transforms(3)}
        assert rep == min(orbit)
        assert rep in orbit

    def test_nullary(self):
        form = exact_npn_canonical(TruthTable(0, 1))
        assert form.representative == TruthTable(0, 0)
        assert form.verify(TruthTable(0, 1))

    def test_known_representatives(self):
        # AND2's orbit minimum is 0x1 (single minterm at 00 after negations).
        and2 = TruthTable.from_binary("1000")
        assert exact_npn_canonical(and2).representative.bits == 0b0001
        # XOR2's orbit is {0110, 1001}; the minimum is 0110.
        xor2 = TruthTable.from_binary("0110")
        assert exact_npn_canonical(xor2).representative.bits == 0b0110


class TestExactClassCounts:
    """Known total NPN class counts: 2, 4, 14, 222 for n = 1..4."""

    def test_n1(self):
        tables = [TruthTable(1, b) for b in range(4)]
        assert ExactEnumerationClassifier().count_classes(tables) == 2

    def test_n2(self):
        tables = [TruthTable(2, b) for b in range(16)]
        assert ExactEnumerationClassifier().count_classes(tables) == 4

    def test_n3(self):
        tables = [TruthTable(3, b) for b in range(256)]
        assert ExactEnumerationClassifier().count_classes(tables) == 14

    @pytest.mark.slow
    def test_n4(self):
        tables = (TruthTable(4, b) for b in range(1 << 16))
        assert ExactEnumerationClassifier().count_classes(tables) == 222


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=1, max_value=4), st.randoms(use_true_random=False))
def test_property_orbit_invariance(n, rng):
    tt = TruthTable(n, rng.getrandbits(1 << n))
    image = tt.apply(random_transform(n, rng))
    assert (
        exact_npn_canonical(tt).representative
        == exact_npn_canonical(image).representative
    )
