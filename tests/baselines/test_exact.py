"""Tests for the bucketed exact classifier."""

import random

import pytest

from repro.baselines.exact import ExactClassifier
from repro.baselines.exact_enum import ExactEnumerationClassifier
from repro.core.transforms import random_transform
from repro.core.truth_table import TruthTable


class TestExactClassifier:
    def test_known_counts_small(self):
        for n, expected in ((1, 2), (2, 4), (3, 14)):
            tables = [TruthTable(n, b) for b in range(1 << (1 << n))]
            assert ExactClassifier().count_classes(tables) == expected

    @pytest.mark.slow
    def test_known_count_n4(self):
        tables = (TruthTable(4, b) for b in range(1 << 16))
        assert ExactClassifier().count_classes(tables) == 222

    @pytest.mark.parametrize("n", [4, 5])
    def test_agrees_with_enumeration_on_random_sets(self, n):
        rng = random.Random(n)
        tables = [TruthTable.random(n, rng) for _ in range(60)]
        # Seed some deliberate equivalences.
        tables += [t.apply(random_transform(n, rng)) for t in tables[:20]]
        exact = ExactClassifier().count_classes(tables)
        enum = ExactEnumerationClassifier().count_classes(tables)
        assert exact == enum

    def test_orbit_collapses(self):
        rng = random.Random(3)
        tt = TruthTable.random(5, rng)
        orbit_sample = [tt.apply(random_transform(5, rng)) for _ in range(30)]
        result = ExactClassifier().classify([tt, *orbit_sample])
        assert result.num_classes == 1
        assert result.num_functions == 31

    def test_stats_populated(self):
        clf = ExactClassifier()
        rng = random.Random(4)
        tables = [TruthTable.random(4, rng) for _ in range(50)]
        tables += [t.apply(random_transform(4, rng)) for t in tables[:10]]
        clf.classify(tables)
        assert clf.stats.functions == 60
        assert clf.stats.buckets <= 60
        assert clf.stats.match_successes >= 10

    def test_weak_bucket_parts_stay_exact(self):
        """Bucketing by a weak invariant shifts work to the matcher only."""
        rng = random.Random(5)
        tables = [TruthTable.random(4, rng) for _ in range(80)]
        weak = ExactClassifier(bucket_parts=["oiv"]).count_classes(tables)
        strong = ExactClassifier().count_classes(tables)
        assert weak == strong

    def test_bucket_collision_instrumentation(self):
        """With a weak bucket key, collisions are detected and resolved."""
        clf = ExactClassifier(bucket_parts=["c0"])
        maj = TruthTable.majority(3)
        xor3 = TruthTable.from_function(3, lambda a, b, c: a ^ b ^ c)
        result = clf.classify([maj, xor3])  # same |f| = 4, not equivalent
        assert result.num_classes == 2
        assert clf.stats.bucket_collisions == 1
