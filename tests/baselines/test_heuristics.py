"""Tests for the reconstructed heuristic baselines (Huang/Petkovska/Zhou).

These methods are deliberately inexact; what the tests pin down is
(1) determinism, (2) the *direction* of their error — they may split NPN
classes but must never merge distinct ones — and (3) the accuracy ordering
Table III reports: huang13 (worst) >= petkovska16/zhou20 >= exact.
"""

import random

import pytest

from repro.baselines import get_classifier
from repro.baselines.base import registered_classifiers
from repro.baselines.exact import ExactClassifier
from repro.baselines.huang13 import Huang13Classifier, huang_canonical
from repro.baselines.petkovska16 import Petkovska16Classifier, petkovska_canonical
from repro.baselines.refinement import (
    ordering_transform,
    phase_normalize,
    refine_partition,
)
from repro.baselines.zhou20 import Zhou20Classifier, zhou_canonical
from repro.core.transforms import random_transform
from repro.core.truth_table import TruthTable

HEURISTICS = [Huang13Classifier, Petkovska16Classifier, Zhou20Classifier]


def random_set(n, count, seed, with_equivalents=True):
    rng = random.Random(seed)
    tables = [TruthTable.random(n, rng) for _ in range(count)]
    if with_equivalents:
        tables += [t.apply(random_transform(n, rng)) for t in tables[: count // 2]]
    return tables


class TestRefinementMachinery:
    def test_phase_normalize_minority(self):
        rng = random.Random(0)
        for _ in range(20):
            tt = TruthTable.random(4, rng)
            normalized, _, _ = phase_normalize(tt)
            assert normalized.count_ones() <= normalized.count_zeros()
            for i in range(4):
                assert normalized.cofactor_count(i, 1) <= (
                    normalized.cofactor_count(i, 0)
                )

    def test_phase_normalize_transform_consistent(self):
        rng = random.Random(1)
        for _ in range(20):
            tt = TruthTable.random(4, rng)
            normalized, out_phase, in_phase = phase_normalize(tt)
            rebuilt = tt.flip_inputs(in_phase)
            if out_phase:
                rebuilt = ~rebuilt
            assert rebuilt == normalized

    def test_refine_partition_blocks_cover_all_vars(self):
        rng = random.Random(2)
        for n in range(1, 6):
            tt = TruthTable.random(n, rng)
            blocks = refine_partition(tt)
            flat = sorted(v for block in blocks for v in block)
            assert flat == list(range(n))

    def test_refine_partition_symmetric_stay_together(self):
        maj = TruthTable.majority(3)
        assert refine_partition(maj) == [[0, 1, 2]]

    def test_refine_partition_splits_asymmetric(self):
        tt = TruthTable.from_function(3, lambda a, b, c: (a & b) | c)
        blocks = refine_partition(tt)
        assert [sorted(b) for b in blocks if len(b) == 2] == [[0, 1]]

    def test_ordering_transform_places_variables(self):
        tt = TruthTable.from_function(3, lambda a, b, c: (a & b) | c)
        transform = ordering_transform(3, [2, 0, 1], 0, 0)
        moved = tt.apply(transform)
        # Original variable 2 (the OR input) is now variable 0.
        assert moved == TruthTable.from_function(
            3, lambda a, b, c: (b & c) | a
        )


class TestHeuristicCharacter:
    @pytest.mark.parametrize("cls", HEURISTICS)
    def test_deterministic(self, cls):
        clf = cls()
        tt = TruthTable.random(5, random.Random(3))
        assert clf.key(tt) == clf.key(tt)

    @pytest.mark.parametrize("cls", HEURISTICS)
    def test_canonical_form_is_orbit_member(self, cls):
        """The claimed canonical form is NPN-equivalent to the input."""
        from repro.baselines.matcher import are_npn_equivalent

        rng = random.Random(4)
        clf = cls()
        for _ in range(10):
            tt = TruthTable.random(4, rng)
            canon = TruthTable(4, clf.key(tt))
            assert are_npn_equivalent(tt, canon)

    @pytest.mark.parametrize("cls", HEURISTICS)
    def test_never_merges_distinct_classes(self, cls):
        """Heuristic errors only split; equal keys imply NPN equivalence."""
        from repro.baselines.matcher import are_npn_equivalent

        rng = random.Random(5)
        clf = cls()
        seen = {}
        for _ in range(120):
            tt = TruthTable.random(4, rng)
            key = clf.key(tt)
            if key in seen:
                assert are_npn_equivalent(seen[key], tt)
            else:
                seen[key] = tt

    @pytest.mark.parametrize("cls", HEURISTICS)
    def test_class_count_at_least_exact(self, cls):
        tables = random_set(4, 80, seed=6)
        exact = ExactClassifier().count_classes(tables)
        assert cls().count_classes(tables) >= exact

    def test_accuracy_ordering(self):
        """Table III shape: huang13 splits far more than the near-exact two."""
        tables = random_set(5, 150, seed=7)
        exact = ExactClassifier().count_classes(tables)
        huang = Huang13Classifier().count_classes(tables)
        petkovska = Petkovska16Classifier().count_classes(tables)
        zhou = Zhou20Classifier().count_classes(tables)
        assert exact <= petkovska <= huang
        assert exact <= zhou <= huang

    def test_huang_canonical_properties(self):
        rng = random.Random(8)
        for _ in range(20):
            tt = TruthTable.random(4, rng)
            canon = huang_canonical(tt)
            # Phase-normalised: minority ones globally.
            assert canon.count_ones() <= canon.count_zeros()

    def test_petkovska_budget_zero_degrades_gracefully(self):
        tables = random_set(4, 60, seed=9)
        cheap = Petkovska16Classifier(budget=0).count_classes(tables)
        rich = Petkovska16Classifier(budget=512).count_classes(tables)
        exact = ExactClassifier().count_classes(tables)
        assert exact <= rich <= cheap

    def test_zhou_descent_reaches_local_minimum(self):
        rng = random.Random(10)
        from repro.core import bitops

        for _ in range(10):
            tt = TruthTable.random(4, rng)
            canon = zhou_canonical(tt)
            table = canon.bits
            for i in range(4):
                assert bitops.flip_input(table, 4, i) >= table
            for i in range(3):
                assert bitops.swap_inputs(table, 4, i, i + 1) >= table


class TestRegistry:
    def test_all_expected_names(self):
        names = registered_classifiers()
        for expected in ("kitty", "huang13", "petkovska16", "zhou20", "exact", "ours"):
            assert expected in names

    def test_get_classifier_roundtrip(self):
        clf = get_classifier("huang13")
        assert isinstance(clf, Huang13Classifier)
        with pytest.raises(ValueError):
            get_classifier("nonexistent")

    def test_ours_adapter_counts_like_core(self):
        from repro.core.classifier import FacePointClassifier

        tables = random_set(4, 60, seed=11)
        adapter = get_classifier("ours")
        core = FacePointClassifier()
        assert adapter.count_classes(tables) == core.count_classes(tables)
