"""Tests for the signature-pruned pairwise NPN matcher."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import matcher
from repro.baselines.exact_enum import exact_npn_canonical
from repro.baselines.matcher import (
    are_npn_equivalent,
    find_npn_transform,
    find_npn_transform_scalar,
    find_npn_transforms_from,
    find_npn_transforms_grouped,
    variable_keys,
)
from repro.core.transforms import NPNTransform, random_transform
from repro.core.truth_table import TruthTable


class TestPositiveMatches:
    @pytest.mark.parametrize("n", range(1, 7))
    def test_finds_transform_for_equivalent_pairs(self, n):
        rng = random.Random(n * 3)
        for _ in range(15):
            tt = TruthTable.random(n, rng)
            expected = random_transform(n, rng)
            image = tt.apply(expected)
            found = find_npn_transform(tt, image)
            assert found is not None
            assert tt.apply(found) == image

    def test_identity_match(self):
        tt = TruthTable.majority(3)
        found = find_npn_transform(tt, tt)
        assert found is not None
        assert tt.apply(found) == tt

    @pytest.mark.parametrize("n", range(1, 7))
    def test_identical_tables_short_circuit_to_identity(self, n):
        """f == g must return the identity without any search."""
        rng = random.Random(n * 5 + 1)
        for _ in range(10):
            tt = TruthTable.random(n, rng)
            found = find_npn_transform(tt, tt)
            assert found is not None
            assert found.is_identity

    def test_output_negation_match(self):
        tt = TruthTable.from_function(4, lambda a, b, c, d: a & b & (c | d))
        found = find_npn_transform(tt, ~tt)
        assert found is not None
        assert found.output_phase == 1

    def test_symmetric_function_matches_fast(self):
        # Fully symmetric: the very first consistent branch succeeds.
        maj5 = TruthTable.majority(5)
        image = maj5.apply(random_transform(5, random.Random(1)))
        assert are_npn_equivalent(maj5, image)

    def test_nullary(self):
        zero, one = TruthTable(0, 0), TruthTable(0, 1)
        assert are_npn_equivalent(zero, one)
        transform = find_npn_transform(zero, one)
        assert zero.apply(transform) == one

    @pytest.mark.parametrize("n", [3, 4, 5])
    def test_are_npn_equivalent_is_symmetric(self, n):
        """Equivalence is an equivalence relation: verdicts commute."""
        rng = random.Random(n * 31)
        for _ in range(12):
            a = TruthTable.random(n, rng)
            pairs = [
                (a, a.apply(random_transform(n, rng))),  # equivalent pair
                (a, TruthTable.random(n, rng)),  # usually inequivalent
            ]
            for x, y in pairs:
                assert are_npn_equivalent(x, y) == are_npn_equivalent(y, x)


class TestNegativeMatches:
    def test_arity_mismatch(self):
        assert find_npn_transform(TruthTable(2, 6), TruthTable(3, 6)) is None

    def test_count_mismatch(self):
        and3 = TruthTable.from_function(3, lambda a, b, c: a & b & c)
        maj3 = TruthTable.majority(3)
        assert not are_npn_equivalent(and3, maj3)

    def test_same_count_nonequivalent(self):
        # x0 ^ x1 ^ x2 vs majority: both balanced, not equivalent.
        xor3 = TruthTable.from_function(3, lambda a, b, c: a ^ b ^ c)
        assert not are_npn_equivalent(xor3, TruthTable.majority(3))

    @pytest.mark.parametrize("n", [3, 4])
    def test_agrees_with_enumeration(self, n):
        """Matcher verdict == canonical-form verdict on random pairs."""
        rng = random.Random(n * 17)
        for _ in range(30):
            a = TruthTable.random(n, rng)
            b = TruthTable.random(n, rng)
            expected = (
                exact_npn_canonical(a).representative
                == exact_npn_canonical(b).representative
            )
            assert are_npn_equivalent(a, b) == expected

    def test_hard_near_symmetric_pair(self):
        # Same satisfy count and similar structure; must still be split.
        f = TruthTable.from_function(4, lambda a, b, c, d: (a & b) | (c & d))
        g = TruthTable.from_function(4, lambda a, b, c, d: (a & b) | (b & c) | (a & d))
        expected = (
            exact_npn_canonical(f).representative
            == exact_npn_canonical(g).representative
        )
        assert are_npn_equivalent(f, g) == expected


class TestVariableKeys:
    def test_symmetric_variables_share_keys(self):
        maj = TruthTable.majority(3)
        keys = variable_keys(maj)
        assert len(set(keys)) == 1

    def test_distinguishes_projection(self):
        tt = TruthTable.from_function(3, lambda a, b, c: (a & b) | c)
        keys = variable_keys(tt)
        assert keys[0] == keys[1]
        assert keys[2] != keys[0]

    def test_keys_invariant_under_np(self):
        from repro.core.transforms import NPNTransform

        rng = random.Random(7)
        for _ in range(10):
            tt = TruthTable.random(4, rng)
            t = random_transform(4, rng)
            pn_only = NPNTransform(t.perm, t.input_phase, 0)
            image = tt.apply(pn_only)
            assert sorted(variable_keys(tt)) == sorted(variable_keys(image))

    def test_keys_not_output_invariant(self):
        """Documented limitation: cofactor pairs complement under ~f."""
        and3 = TruthTable.from_function(3, lambda a, b, c: a & b & c)
        assert sorted(variable_keys(and3)) != sorted(variable_keys(~and3))


class TestScalarParity:
    """The gather path and the seed backtracker are interchangeable."""

    @pytest.mark.parametrize("n", range(1, 7))
    def test_identical_witnesses_on_equivalent_pairs(self, n):
        """Same verdict AND byte-identical witness: the vectorized
        search enumerates candidates in the backtracker's order."""
        rng = random.Random(n * 71)
        for _ in range(25):
            tt = TruthTable.random(n, rng)
            image = tt.apply(random_transform(n, rng))
            assert find_npn_transform(tt, image) == find_npn_transform_scalar(
                tt, image
            )

    @pytest.mark.parametrize("n", [3, 4, 5, 6])
    def test_same_verdict_on_random_pairs(self, n):
        rng = random.Random(n * 73)
        for _ in range(25):
            a, b = TruthTable.random(n, rng), TruthTable.random(n, rng)
            assert (find_npn_transform(a, b) is None) == (
                find_npn_transform_scalar(a, b) is None
            )

    def test_symmetric_overflow_path(self):
        """Fully symmetric functions exercise the chunked early-exit."""
        xor6 = TruthTable.from_function(6, lambda *xs: sum(xs) % 2)
        image = xor6.apply(random_transform(6, random.Random(11)))
        witness = find_npn_transform(xor6, image)
        assert witness == find_npn_transform_scalar(xor6, image)
        assert xor6.apply(witness) == image

    def test_large_arity_falls_back_to_scalar(self):
        rng = random.Random(77)
        tt = TruthTable.random(7, rng)
        image = tt.apply(random_transform(7, rng))
        witness = find_npn_transform(tt, image)
        assert witness is not None
        assert tt.apply(witness) == image


class TestBulkAPIs:
    def test_bulk_matches_singles(self):
        rng = random.Random(5)
        source = TruthTable.random(5, rng)
        targets = (
            [source.apply(random_transform(5, rng)) for _ in range(10)]
            + [TruthTable.random(5, rng) for _ in range(10)]
            + [source, ~source]
        )
        bulk = find_npn_transforms_from(source, targets)
        singles = [find_npn_transform(source, t) for t in targets]
        assert bulk == singles

    def test_grouped_matches_singles_across_arities(self):
        rng = random.Random(6)
        pairs = []
        for n in (3, 4, 6):
            source = TruthTable.random(n, rng)
            targets = [
                source.apply(random_transform(n, rng)),
                TruthTable.random(n, rng),
                source,
            ]
            pairs.append((source, targets))
        grouped = find_npn_transforms_grouped(pairs)
        for (source, targets), row in zip(pairs, grouped):
            assert row == [find_npn_transform(source, t) for t in targets]

    def test_arity_mismatch_target_is_none(self):
        source = TruthTable.random(4, random.Random(8))
        bulk = find_npn_transforms_from(
            source, [TruthTable(3, 6), source]
        )
        assert bulk[0] is None
        assert bulk[1] is not None and bulk[1].is_identity

    def test_empty_targets(self):
        assert find_npn_transforms_from(TruthTable.majority(3), []) == []
        assert find_npn_transforms_grouped([]) == []


class TestVerificationFinalStep:
    """Verification is one consistently-applied final step: whatever the
    search produces — identity short-circuit included — is checked once
    against ``source.apply(witness) == target`` before being returned."""

    def test_bogus_search_result_is_rejected(self, monkeypatch):
        """A corrupted (unverifiable) witness never escapes the matcher."""
        and3 = TruthTable.from_function(3, lambda a, b, c: a & b & c)
        or3 = TruthTable.from_function(3, lambda a, b, c: a | b | c)
        bogus = NPNTransform((0, 1, 2), 0, 0)  # and3.apply(bogus) != or3
        monkeypatch.setattr(
            matcher,
            "_search_transforms_grouped",
            lambda pairs, cache_dir: [
                [bogus] * len(targets) for _, targets in pairs
            ],
        )
        assert find_npn_transform(and3, or3) is None
        assert find_npn_transforms_from(and3, [or3, or3]) == [None, None]

    def test_bogus_scalar_search_result_is_rejected(self, monkeypatch):
        and3 = TruthTable.from_function(3, lambda a, b, c: a & b & c)
        or3 = TruthTable.from_function(3, lambda a, b, c: a | b | c)
        monkeypatch.setattr(
            matcher,
            "_scalar_search",
            lambda source, target, keys: NPNTransform((0, 1, 2), 0, 0),
        )
        assert find_npn_transform_scalar(and3, or3) is None

    def test_genuine_witnesses_survive_verification(self, monkeypatch):
        """The verification step passes every honest search result."""
        tt = TruthTable.majority(3)
        image = tt.apply(NPNTransform((1, 2, 0), 0b010, 1))
        assert find_npn_transform(tt, image) is not None

    def test_identity_short_circuit_still_verified_path(self):
        """f == g returns the identity through the same public flow."""
        tt = TruthTable.random(6, random.Random(13))
        witness = find_npn_transform(tt, tt)
        assert witness is not None and witness.is_identity


class TestVariableKeyMemoization:
    def test_repeated_calls_hit_the_keyed_lru(self):
        variable_keys.cache_clear()
        tt = TruthTable.random(6, random.Random(21))
        first = variable_keys(tt)
        hits_before = variable_keys.cache_info().hits
        assert variable_keys(tt) is first
        assert variable_keys.cache_info().hits == hits_before + 1

    def test_repeated_matches_reuse_source_keys(self):
        """Matching many targets against one representative computes the
        representative's key rows once."""
        matcher._source_key_matrix.cache_clear()
        rng = random.Random(22)
        source = TruthTable.random(6, rng)
        targets = [source.apply(random_transform(6, rng)) for _ in range(4)]
        for target in targets:
            assert find_npn_transform(source, target) is not None
        info = matcher._source_key_matrix.cache_info()
        assert info.misses == 1
        assert info.hits >= len(targets) - 1


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=1, max_value=6), st.randoms(use_true_random=False))
def test_property_matcher_completeness(n, rng):
    """For a constructed equivalent pair the matcher always succeeds."""
    tt = TruthTable(n, rng.getrandbits(1 << n))
    image = tt.apply(random_transform(n, rng))
    transform = find_npn_transform(tt, image)
    assert transform is not None
    assert tt.apply(transform) == image


@settings(max_examples=30, deadline=None)
@given(st.randoms(use_true_random=False))
def test_property_matcher_soundness_n3(rng):
    """Matcher never claims equivalence the enumeration denies (n = 3)."""
    a = TruthTable(3, rng.getrandbits(8))
    b = TruthTable(3, rng.getrandbits(8))
    expected = (
        exact_npn_canonical(a).representative
        == exact_npn_canonical(b).representative
    )
    assert are_npn_equivalent(a, b) == expected
