"""Tests for the signature-pruned pairwise NPN matcher."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.exact_enum import exact_npn_canonical
from repro.baselines.matcher import (
    are_npn_equivalent,
    find_npn_transform,
    variable_keys,
)
from repro.core.transforms import random_transform
from repro.core.truth_table import TruthTable


class TestPositiveMatches:
    @pytest.mark.parametrize("n", range(1, 7))
    def test_finds_transform_for_equivalent_pairs(self, n):
        rng = random.Random(n * 3)
        for _ in range(15):
            tt = TruthTable.random(n, rng)
            expected = random_transform(n, rng)
            image = tt.apply(expected)
            found = find_npn_transform(tt, image)
            assert found is not None
            assert tt.apply(found) == image

    def test_identity_match(self):
        tt = TruthTable.majority(3)
        found = find_npn_transform(tt, tt)
        assert found is not None
        assert tt.apply(found) == tt

    @pytest.mark.parametrize("n", range(1, 7))
    def test_identical_tables_short_circuit_to_identity(self, n):
        """f == g must return the identity without any search."""
        rng = random.Random(n * 5 + 1)
        for _ in range(10):
            tt = TruthTable.random(n, rng)
            found = find_npn_transform(tt, tt)
            assert found is not None
            assert found.is_identity

    def test_output_negation_match(self):
        tt = TruthTable.from_function(4, lambda a, b, c, d: a & b & (c | d))
        found = find_npn_transform(tt, ~tt)
        assert found is not None
        assert found.output_phase == 1

    def test_symmetric_function_matches_fast(self):
        # Fully symmetric: the very first consistent branch succeeds.
        maj5 = TruthTable.majority(5)
        image = maj5.apply(random_transform(5, random.Random(1)))
        assert are_npn_equivalent(maj5, image)

    def test_nullary(self):
        zero, one = TruthTable(0, 0), TruthTable(0, 1)
        assert are_npn_equivalent(zero, one)
        transform = find_npn_transform(zero, one)
        assert zero.apply(transform) == one

    @pytest.mark.parametrize("n", [3, 4, 5])
    def test_are_npn_equivalent_is_symmetric(self, n):
        """Equivalence is an equivalence relation: verdicts commute."""
        rng = random.Random(n * 31)
        for _ in range(12):
            a = TruthTable.random(n, rng)
            pairs = [
                (a, a.apply(random_transform(n, rng))),  # equivalent pair
                (a, TruthTable.random(n, rng)),  # usually inequivalent
            ]
            for x, y in pairs:
                assert are_npn_equivalent(x, y) == are_npn_equivalent(y, x)


class TestNegativeMatches:
    def test_arity_mismatch(self):
        assert find_npn_transform(TruthTable(2, 6), TruthTable(3, 6)) is None

    def test_count_mismatch(self):
        and3 = TruthTable.from_function(3, lambda a, b, c: a & b & c)
        maj3 = TruthTable.majority(3)
        assert not are_npn_equivalent(and3, maj3)

    def test_same_count_nonequivalent(self):
        # x0 ^ x1 ^ x2 vs majority: both balanced, not equivalent.
        xor3 = TruthTable.from_function(3, lambda a, b, c: a ^ b ^ c)
        assert not are_npn_equivalent(xor3, TruthTable.majority(3))

    @pytest.mark.parametrize("n", [3, 4])
    def test_agrees_with_enumeration(self, n):
        """Matcher verdict == canonical-form verdict on random pairs."""
        rng = random.Random(n * 17)
        for _ in range(30):
            a = TruthTable.random(n, rng)
            b = TruthTable.random(n, rng)
            expected = (
                exact_npn_canonical(a).representative
                == exact_npn_canonical(b).representative
            )
            assert are_npn_equivalent(a, b) == expected

    def test_hard_near_symmetric_pair(self):
        # Same satisfy count and similar structure; must still be split.
        f = TruthTable.from_function(4, lambda a, b, c, d: (a & b) | (c & d))
        g = TruthTable.from_function(4, lambda a, b, c, d: (a & b) | (b & c) | (a & d))
        expected = (
            exact_npn_canonical(f).representative
            == exact_npn_canonical(g).representative
        )
        assert are_npn_equivalent(f, g) == expected


class TestVariableKeys:
    def test_symmetric_variables_share_keys(self):
        maj = TruthTable.majority(3)
        keys = variable_keys(maj)
        assert len(set(keys)) == 1

    def test_distinguishes_projection(self):
        tt = TruthTable.from_function(3, lambda a, b, c: (a & b) | c)
        keys = variable_keys(tt)
        assert keys[0] == keys[1]
        assert keys[2] != keys[0]

    def test_keys_invariant_under_np(self):
        from repro.core.transforms import NPNTransform

        rng = random.Random(7)
        for _ in range(10):
            tt = TruthTable.random(4, rng)
            t = random_transform(4, rng)
            pn_only = NPNTransform(t.perm, t.input_phase, 0)
            image = tt.apply(pn_only)
            assert sorted(variable_keys(tt)) == sorted(variable_keys(image))

    def test_keys_not_output_invariant(self):
        """Documented limitation: cofactor pairs complement under ~f."""
        and3 = TruthTable.from_function(3, lambda a, b, c: a & b & c)
        assert sorted(variable_keys(and3)) != sorted(variable_keys(~and3))


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=1, max_value=6), st.randoms(use_true_random=False))
def test_property_matcher_completeness(n, rng):
    """For a constructed equivalent pair the matcher always succeeds."""
    tt = TruthTable(n, rng.getrandbits(1 << n))
    image = tt.apply(random_transform(n, rng))
    transform = find_npn_transform(tt, image)
    assert transform is not None
    assert tt.apply(transform) == image


@settings(max_examples=30, deadline=None)
@given(st.randoms(use_true_random=False))
def test_property_matcher_soundness_n3(rng):
    """Matcher never claims equivalence the enumeration denies (n = 3)."""
    a = TruthTable(3, rng.getrandbits(8))
    b = TruthTable(3, rng.getrandbits(8))
    expected = (
        exact_npn_canonical(a).representative
        == exact_npn_canonical(b).representative
    )
    assert are_npn_equivalent(a, b) == expected
