"""Property tests for the write-ahead segment format.

Three contracts, in the order crash recovery depends on them:

* **Round-trip** — any JSON-object record sequence written through
  :class:`SegmentWriter` replays identically (hypothesis-generated
  records, so framing bugs shrink to a minimal payload);
* **Torn-tail recovery** — truncating or corrupting the file at *every*
  byte offset of the final record loses exactly that record: replay
  returns the intact prefix, flags the tear, and reports the safe
  truncation point;
* **Compaction determinism** — any arrival order and any segmentation
  of a fixed record set compacts to byte-identical ``manifest.json``
  and ``classes.npz`` images (hypothesis draws the permutation and the
  segment split points).
"""

import json
import random
import tempfile
from pathlib import Path

import pytest
from hypothesis import given, strategies as st

from repro.core.truth_table import TruthTable
from repro.library import (
    DEFAULT_SEGMENT_BYTES,
    FSYNC_POLICIES,
    LearningLibrary,
    SegmentWriter,
    WalError,
    list_segments,
    replay_segment,
)
from repro.library.store import MANIFEST_FILE, TABLES_FILE
from repro.library.wal import (
    MAX_RECORD_BYTES,
    WAL_MAGIC,
    decode_records,
    encode_record,
    segment_path,
)

# JSON-object records: whatever shape future schema versions take, the
# framing layer must round-trip it byte-exactly.
_json_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(1 << 53), max_value=1 << 53),
    st.text(max_size=20),
)
_records = st.dictionaries(
    st.text(min_size=1, max_size=10),
    st.one_of(_json_scalars, st.lists(_json_scalars, max_size=4)),
    max_size=6,
)


def _write_segment(path, records, fsync="close") -> None:
    with SegmentWriter(path, fsync=fsync) as writer:
        for record in records:
            writer.append(record)


class TestRoundTrip:
    @given(st.lists(_records, max_size=12))
    def test_any_record_sequence_replays_identically(self, records):
        with tempfile.TemporaryDirectory() as tmp:
            path = segment_path(tmp, 0)
            _write_segment(path, records)
            replay = replay_segment(path)
        assert replay.records == records
        assert replay.clean
        assert replay.valid_bytes == len(WAL_MAGIC) + sum(
            len(encode_record(r)) for r in records
        )

    @given(st.lists(_records, max_size=8))
    def test_decode_inverts_encode(self, records):
        data = b"".join(encode_record(r) for r in records)
        decoded, clean, valid = decode_records(data)
        assert decoded == records
        assert clean
        assert valid == len(data)

    @pytest.mark.parametrize("fsync", FSYNC_POLICIES)
    def test_every_fsync_policy_round_trips(self, fsync, tmp_path):
        path = segment_path(tmp_path, 3)
        records = [{"k": i} for i in range(5)]
        _write_segment(path, records, fsync=fsync)
        assert replay_segment(path).records == records

    def test_empty_segment_is_clean(self, tmp_path):
        path = segment_path(tmp_path, 0)
        SegmentWriter(path).close()
        replay = replay_segment(path)
        assert replay.records == []
        assert replay.clean
        assert replay.valid_bytes == len(WAL_MAGIC)


class TestTornTail:
    """Crash artifacts at every byte offset of the final record."""

    @pytest.fixture()
    def segment(self, tmp_path):
        """A sealed 4-record segment plus its last-record boundary."""
        path = segment_path(tmp_path, 0)
        records = [{"class_id": f"n5-{i:04x}", "size": i + 1} for i in range(4)]
        _write_segment(path, records)
        data = path.read_bytes()
        boundary = len(WAL_MAGIC) + sum(
            len(encode_record(r)) for r in records[:3]
        )
        return path, records, data, boundary

    def test_truncation_at_every_offset_keeps_prefix(self, segment):
        path, records, data, boundary = segment
        for cut in range(boundary, len(data)):
            path.write_bytes(data[:cut])
            replay = replay_segment(path)
            assert replay.records == records[:3], f"cut at byte {cut}"
            # A cut exactly on the boundary is a whole-record loss, not
            # a tear: the file is short but self-consistent.
            assert replay.clean == (cut == boundary)
            assert replay.valid_bytes == boundary

    def test_bit_flip_at_every_offset_drops_only_last_record(self, segment):
        path, records, data, boundary = segment
        for position in range(boundary, len(data)):
            corrupted = bytearray(data)
            corrupted[position] ^= 0x40
            path.write_bytes(bytes(corrupted))
            replay = replay_segment(path)
            assert replay.records == records[:3], f"flip at byte {position}"
            assert not replay.clean
            assert replay.valid_bytes == boundary

    def test_untouched_file_is_clean(self, segment):
        path, records, data, _ = segment
        replay = replay_segment(path)
        assert replay.records == records
        assert replay.clean
        assert replay.valid_bytes == len(data)

    def test_truncated_magic_raises(self, tmp_path):
        path = tmp_path / "torn-magic.wal"
        path.write_bytes(WAL_MAGIC[:7])
        with pytest.raises(WalError):
            replay_segment(path)

    def test_foreign_file_raises(self, tmp_path):
        path = tmp_path / "foreign.wal"
        path.write_bytes(b"PK\x03\x04 definitely not a wal segment")
        with pytest.raises(WalError):
            replay_segment(path)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(WalError):
            replay_segment(tmp_path / "absent.wal")

    def test_oversized_declared_length_is_a_tear(self):
        header = encode_record({"a": 1})[:8]
        bogus = bytearray(header)
        bogus[0:4] = (MAX_RECORD_BYTES + 1).to_bytes(4, "little")
        records, clean, valid = decode_records(bytes(bogus) + b"x" * 32)
        assert records == [] and not clean and valid == 0

    def test_non_object_payload_is_a_tear(self):
        import struct
        import zlib

        payload = json.dumps([1, 2, 3]).encode()
        frame = struct.pack("<II", len(payload), zlib.crc32(payload)) + payload
        good = encode_record({"ok": True})
        records, clean, valid = decode_records(good + frame)
        assert records == [{"ok": True}]
        assert not clean
        assert valid == len(good)


class TestWriter:
    def test_exclusive_create_refuses_existing_segment(self, tmp_path):
        path = segment_path(tmp_path, 0)
        SegmentWriter(path).close()
        with pytest.raises(FileExistsError):
            SegmentWriter(path)

    def test_append_after_close_raises(self, tmp_path):
        writer = SegmentWriter(segment_path(tmp_path, 0))
        writer.close()
        with pytest.raises(WalError):
            writer.append({"a": 1})

    def test_unknown_fsync_policy_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            SegmentWriter(segment_path(tmp_path, 0), fsync="sometimes")

    def test_oversized_record_rejected_before_write(self, tmp_path):
        writer = SegmentWriter(segment_path(tmp_path, 0))
        try:
            with pytest.raises(WalError):
                writer.append({"blob": "x" * (MAX_RECORD_BYTES + 1)})
        finally:
            writer.close()
        # The refused record must not have reached the file.
        assert replay_segment(writer.path).records == []


# ----------------------------------------------------------------------
# Compaction determinism
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def minted_records():
    """A fixed set of genuine WAL records, minted once via learn()."""
    rng = random.Random(77)
    with tempfile.TemporaryDirectory() as tmp:
        learner = LearningLibrary.open(tmp, create=True)
        while learner.minted < 8:
            learner.learn(TruthTable.random(4, rng))
        learner.close_segment()
        records = [
            record
            for path in list_segments(tmp)
            for record in replay_segment(path).records
        ]
    assert len(records) == 8
    return records


def _compact_image(records, segmentation) -> dict[str, bytes]:
    """Write ``records`` split at ``segmentation``, replay, compact."""
    with tempfile.TemporaryDirectory() as tmp:
        bounds = [0, *sorted(segmentation), len(records)]
        index = 0
        for start, stop in zip(bounds, bounds[1:]):
            if start == stop:
                continue
            _write_segment(segment_path(tmp, index), records[start:stop])
            index += 1
        learner = LearningLibrary.open(tmp, create=True)
        assert learner.pending_records == len(records)
        result = learner.compact()
        assert result.merged_records == len(records)
        assert learner.segments == []
        return {
            name: (Path(tmp) / name).read_bytes()
            for name in (MANIFEST_FILE, TABLES_FILE)
        }


class TestCompactionDeterminism:
    @given(data=st.data())
    def test_any_order_and_segmentation_compacts_identically(
        self, data, minted_records
    ):
        reference = _compact_image(minted_records, segmentation=[])
        order = data.draw(st.permutations(minted_records))
        splits = data.draw(
            st.lists(
                st.integers(0, len(minted_records)), max_size=3, unique=True
            )
        )
        assert _compact_image(order, splits) == reference

    def test_replayed_then_compacted_equals_direct_save(self, minted_records):
        image = _compact_image(minted_records, segmentation=[2, 5])
        manifest = json.loads(image[MANIFEST_FILE].decode())
        assert manifest["num_classes"] == len(minted_records)
