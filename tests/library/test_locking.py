"""Learner lock: one live learner per library directory, fail-fast.

Two learners appending to one ``wal/`` race on segment creation and
corrupt the replay order; the ``wal/LOCK`` pid file turns that latent
race into an immediate, explainable :class:`LibraryLockedError` at open
time.  Stale locks — a dead holder, an unparseable file, or our own pid
from an earlier open in this process — are taken over silently.
"""

import os
import subprocess
import sys

import pytest

from repro.core.truth_table import TruthTable
from repro.library import LearningLibrary, LibraryLockedError
from repro.library.wal import (
    acquire_learner_lock,
    lock_path,
    release_learner_lock,
)


def spawn_sleeper() -> subprocess.Popen:
    """A live process whose pid can hold a lock during the test."""
    return subprocess.Popen([sys.executable, "-c", "import time; time.sleep(60)"])


class TestAcquireRelease:
    def test_open_claims_and_close_releases(self, tmp_path):
        learner = LearningLibrary.open(tmp_path, create=True)
        path = lock_path(tmp_path)
        assert path.read_text().strip() == str(os.getpid())
        learner.close()
        assert not path.exists()

    def test_context_manager_releases(self, tmp_path):
        with LearningLibrary.open(tmp_path, create=True):
            assert lock_path(tmp_path).exists()
        assert not lock_path(tmp_path).exists()

    def test_compact_keeps_the_lock(self, tmp_path):
        # Compaction happens mid-serve; the learner is still the active
        # learner afterwards and must not open the door to a second one.
        with LearningLibrary.open(tmp_path, create=True) as learner:
            learner.learn(TruthTable.majority(3))
            learner.compact()
            assert lock_path(tmp_path).exists()

    def test_failed_open_does_not_leak_the_lock(self, tmp_path):
        with pytest.raises(Exception):
            LearningLibrary.open(tmp_path / "nowhere")  # no image, no create
        assert not lock_path(tmp_path / "nowhere").exists()

    def test_release_is_idempotent(self, tmp_path):
        acquire_learner_lock(tmp_path)
        release_learner_lock(tmp_path)
        release_learner_lock(tmp_path)
        assert not lock_path(tmp_path).exists()

    def test_release_leaves_foreign_locks_alone(self, tmp_path):
        path = lock_path(tmp_path)
        path.parent.mkdir(parents=True)
        path.write_text("99999999\n")  # not our pid
        release_learner_lock(tmp_path)
        assert path.exists()


class TestConflict:
    def test_live_foreign_holder_fails_fast(self, tmp_path):
        holder = spawn_sleeper()
        try:
            path = lock_path(tmp_path)
            path.parent.mkdir(parents=True)
            path.write_text(f"{holder.pid}\n")
            with pytest.raises(LibraryLockedError, match="active learner"):
                LearningLibrary.open(tmp_path, create=True)
            assert path.read_text().strip() == str(holder.pid)  # untouched
        finally:
            holder.kill()
            holder.wait()

    def test_error_names_the_holder_pid(self, tmp_path):
        holder = spawn_sleeper()
        try:
            path = lock_path(tmp_path)
            path.parent.mkdir(parents=True)
            path.write_text(f"{holder.pid}\n")
            with pytest.raises(LibraryLockedError, match=str(holder.pid)):
                acquire_learner_lock(tmp_path)
        finally:
            holder.kill()
            holder.wait()


class TestTakeover:
    def test_own_pid_is_taken_over(self, tmp_path):
        # A learner reopened in the same process (crash recovery tests,
        # REPL sessions) must not deadlock against its own earlier open.
        first = LearningLibrary.open(tmp_path, create=True)
        first.learn(TruthTable.majority(3))
        first.close_segment()
        second = LearningLibrary.open(tmp_path, create=True)
        assert second.library.num_classes == 1
        second.close()

    def test_dead_holder_is_taken_over(self, tmp_path):
        corpse = spawn_sleeper()
        corpse.kill()
        corpse.wait()
        path = lock_path(tmp_path)
        path.parent.mkdir(parents=True)
        path.write_text(f"{corpse.pid}\n")
        with LearningLibrary.open(tmp_path, create=True):
            assert path.read_text().strip() == str(os.getpid())

    def test_unparseable_lock_is_taken_over(self, tmp_path):
        path = lock_path(tmp_path)
        path.parent.mkdir(parents=True)
        path.write_text("not-a-pid\n")
        with LearningLibrary.open(tmp_path, create=True):
            assert path.read_text().strip() == str(os.getpid())


class TestCrossProcess:
    def test_second_process_is_locked_out(self, tmp_path):
        """The real scenario: this process learns, another process tries."""
        with LearningLibrary.open(tmp_path, create=True):
            probe = subprocess.run(
                [
                    sys.executable,
                    "-c",
                    (
                        "import sys\n"
                        "from repro.library import ("
                        "LearningLibrary, LibraryLockedError)\n"
                        "try:\n"
                        f"    LearningLibrary.open({str(tmp_path)!r}, "
                        "create=True)\n"
                        "except LibraryLockedError as exc:\n"
                        "    print(f'locked: {exc}')\n"
                        "    sys.exit(42)\n"
                        "sys.exit(0)\n"
                    ),
                ],
                capture_output=True,
                text=True,
                env=dict(os.environ, PYTHONPATH="src"),
                cwd=os.path.dirname(os.path.dirname(os.path.dirname(__file__))),
            )
        assert probe.returncode == 42, probe.stderr
        assert "active learner" in probe.stdout
