"""Tests for the persistent NPN class library (build/save/load/match/merge)."""

import json
import random
import zipfile

import numpy as np
import pytest

from repro.baselines.exact_enum import exact_npn_canonical
from repro.core.transforms import random_transform
from repro.core.truth_table import TruthTable
from repro.library import (
    ClassLibrary,
    LibraryFormatError,
    build_exhaustive_library,
    build_library,
    elect_representative,
)
from repro.library.store import MANIFEST_FILE, TABLES_FILE
from repro.workloads.library_corpus import exhaustive_tables
from repro.workloads.random_functions import random_tables


@pytest.fixture(scope="module")
def lib3() -> ClassLibrary:
    """The complete n=3 inventory: 14 NPN classes over 256 functions."""
    return build_exhaustive_library(3)


class TestBuild:
    def test_exhaustive_n3_class_inventory(self, lib3):
        assert lib3.num_classes == 14
        assert lib3.num_functions == 256
        assert lib3.arities() == (3,)

    def test_exact_representatives_are_orbit_minima(self, lib3):
        for entry in lib3.entries():
            assert entry.exact
            canonical = exact_npn_canonical(entry.representative).representative
            assert entry.representative == canonical

    def test_class_sizes_partition_the_space(self, lib3):
        assert sum(e.size for e in lib3.entries()) == 256

    def test_engines_build_identical_libraries(self):
        tables = list(exhaustive_tables(2)) + random_tables(5, 120, seed=9)
        built = {
            engine: build_library(tables, engine=engine, workers=workers)
            for engine, workers in (
                ("perfn", None),
                ("batched", None),
                ("sharded", 2),
            )
        }
        snapshots = {
            engine: [
                (e.class_id, e.representative, e.size, e.exact)
                for e in lib.entries()
            ]
            for engine, lib in built.items()
        }
        assert snapshots["perfn"] == snapshots["batched"] == snapshots["sharded"]

    def test_elected_representative_is_minimum_member(self):
        rng = random.Random(5)
        seed_fn = TruthTable.random(5, rng)
        members = [seed_fn] + [
            seed_fn.apply(random_transform(5, rng)) for _ in range(6)
        ]
        representative, exact = elect_representative(members)
        assert not exact
        assert representative == min(members)

    def test_elect_rejects_empty_bucket(self):
        with pytest.raises(ValueError):
            elect_representative([])

    def test_add_class_accumulates_size(self):
        library = ClassLibrary()
        maj = TruthTable.majority(3)
        library.add_class(maj, size=2, exact=False)
        library.add_class(~maj, size=3, exact=False)  # same class id (NPN inv.)
        assert library.num_classes == 1
        assert library.num_functions == 5

    def test_stats_rows(self, lib3):
        (row,) = lib3.stats()
        assert row["n"] == 3
        assert row["classes"] == 14
        assert row["functions"] == 256
        assert row["exact_reps"] == 14


class TestMatch:
    def test_every_function_matches_with_verified_witness(self, lib3):
        seen = set()
        for tt in exhaustive_tables(3):
            hit = lib3.match(tt)
            assert hit is not None
            assert hit.verify(tt)
            assert hit.representative.apply(hit.transform) == tt
            seen.add(hit.class_id)
        assert len(seen) == 14

    def test_match_of_representative_is_identity(self, lib3):
        for entry in lib3.entries():
            hit = lib3.match(entry.representative)
            assert hit.class_id == entry.class_id
            assert hit.transform.is_identity

    def test_miss_outside_covered_arities(self, lib3):
        assert lib3.match(TruthTable.majority(5)) is None
        assert lib3.lookup(TruthTable(2, 0b0110)) is None

    def test_elected_library_matches_planted_images(self):
        rng = random.Random(77)
        seeds = [TruthTable.random(5, rng) for _ in range(20)]
        corpus = [
            s.apply(random_transform(5, rng)) for s in seeds for _ in range(3)
        ]
        library = build_library(corpus, id_scheme="digest")
        for seed_fn in seeds:
            query = seed_fn.apply(random_transform(5, rng))
            hit = library.match(query)
            assert hit is not None
            assert hit.verify(query)
            assert not hit.entry.exact

    def test_class_id_rejects_foreign_parts(self, lib3):
        from repro.core.msv import compute_msv

        signature = compute_msv(TruthTable.majority(3), ("c0", "oiv"))
        with pytest.raises(ValueError):
            lib3.class_id_of(signature)

    def test_libray_match_verify_rejects_other_query(self, lib3):
        maj = TruthTable.majority(3)
        hit = lib3.match(maj)
        assert hit.verify(maj)
        assert not hit.verify(~maj)


class TestMatchMany:
    def test_agrees_with_per_query_match(self, lib3):
        rng = random.Random(13)
        queries = [
            TruthTable.random(3, rng).apply(random_transform(3, rng))
            for _ in range(40)
        ]
        bulk = lib3.match_many(queries)
        assert len(bulk) == len(queries)
        for query, hit in zip(queries, bulk):
            single = lib3.match(query)
            assert hit is not None and single is not None
            assert hit.class_id == single.class_id
            assert hit.verify(query)

    def test_mixed_arities_and_misses_keep_order(self, lib3):
        queries = [
            TruthTable.majority(3),      # hit
            TruthTable.majority(5),      # miss: arity not covered
            TruthTable(3, 0x1E),         # hit
            TruthTable(2, 0b0110),       # miss: arity not covered
        ]
        bulk = lib3.match_many(queries)
        assert [hit is not None for hit in bulk] == [True, False, True, False]
        assert bulk[0].verify(queries[0])
        assert bulk[2].verify(queries[2])

    def test_empty_input(self, lib3):
        assert lib3.match_many([]) == []

    def test_accepts_precomputed_signatures(self, lib3):
        from repro.core.msv import compute_msv

        queries = [TruthTable.majority(3), TruthTable(3, 0xE8)]
        signatures = [compute_msv(tt, lib3.parts) for tt in queries]
        bulk = lib3.match_many(queries, signatures=signatures)
        assert all(hit is not None and hit.verify(q) for hit, q in zip(bulk, queries))

    def test_rejects_mismatched_signature_count(self, lib3):
        from repro.core.msv import compute_msv

        queries = [TruthTable.majority(3), TruthTable(3, 0xE8)]
        with pytest.raises(ValueError):
            lib3.match_many(queries, signatures=[compute_msv(queries[0])])

    def test_rejects_foreign_part_signatures(self, lib3):
        from repro.core.msv import compute_msv

        maj = TruthTable.majority(3)
        with pytest.raises(ValueError):
            lib3.match_many([maj], signatures=[compute_msv(maj, ("c0", "oiv"))])

    def test_match_delegates_to_match_many(self, lib3):
        # The single-query path is the bulk path: same hit, same witness.
        maj = TruthTable.majority(3)
        assert lib3.match(maj).class_id == lib3.match_many([maj])[0].class_id

    def test_bulk_signature_engine_is_reused(self, lib3):
        engine_a = lib3._signature_engine()
        lib3.match_many([TruthTable.majority(3)])
        assert lib3._signature_engine() is engine_a


class TestMerge:
    def test_merge_of_halves_equals_full_build(self):
        tables = list(exhaustive_tables(3))
        full = build_library(tables)
        left = build_library(tables[:100])
        right = build_library(tables[100:])
        merged = left.merged_with(right)
        assert {e.class_id: e.size for e in merged.entries()} == {
            e.class_id: e.size for e in full.entries()
        }
        assert [e.representative for e in merged.entries()] == [
            e.representative for e in full.entries()
        ]

    def test_merge_keeps_smaller_elected_representative(self):
        rng = random.Random(13)
        seed_fn = TruthTable.random(5, rng)
        images = [seed_fn.apply(random_transform(5, rng)) for _ in range(8)]
        lib_a = build_library(images[:4])
        lib_b = build_library(images[4:])
        merged = lib_a.merged_with(lib_b)
        (entry,) = merged.entries()
        assert entry.size == 8
        assert entry.representative == min(
            a.representative
            for lib in (lib_a, lib_b)
            for a in lib.entries()
        )

    def test_merge_rejects_different_parts(self, lib3):
        other = ClassLibrary(parts=("c0", "oiv"))
        with pytest.raises(ValueError):
            lib3.merged_with(other)


class TestPersistence:
    def test_save_load_round_trip(self, lib3, tmp_path):
        lib3.save(tmp_path / "lib")
        loaded = ClassLibrary.load(tmp_path / "lib")
        assert loaded.parts == lib3.parts
        assert {e.class_id for e in loaded.entries()} == {
            e.class_id for e in lib3.entries()
        }
        for tt in exhaustive_tables(3):
            original = lib3.match(tt)
            reloaded = loaded.match(tt)
            assert reloaded is not None
            assert reloaded.class_id == original.class_id
            assert reloaded.verify(tt)

    def test_save_is_byte_stable(self, lib3, tmp_path):
        first, second = tmp_path / "a", tmp_path / "b"
        lib3.save(first)
        build_exhaustive_library(3).save(second)  # independent rebuild
        for name in (MANIFEST_FILE, TABLES_FILE):
            assert (first / name).read_bytes() == (second / name).read_bytes()

    def test_round_trip_preserves_metadata(self, lib3, tmp_path):
        lib3.save(tmp_path / "lib")
        loaded = ClassLibrary.load(tmp_path / "lib")
        for original, reloaded in zip(lib3.entries(), loaded.entries()):
            assert original == reloaded

    def test_empty_library_round_trips(self, tmp_path):
        empty = build_library([])
        empty.save(tmp_path / "empty")
        loaded = ClassLibrary.load(tmp_path / "empty")
        assert loaded.num_classes == 0
        assert loaded.stats() == []

    def test_missing_directory(self, tmp_path):
        with pytest.raises(LibraryFormatError, match="not found"):
            ClassLibrary.load(tmp_path / "nowhere")

    def test_missing_tables_file(self, lib3, tmp_path):
        lib3.save(tmp_path / "lib")
        (tmp_path / "lib" / TABLES_FILE).unlink()
        with pytest.raises(LibraryFormatError, match="not found"):
            ClassLibrary.load(tmp_path / "lib")

    def test_invalid_manifest_json(self, lib3, tmp_path):
        lib3.save(tmp_path / "lib")
        (tmp_path / "lib" / MANIFEST_FILE).write_text("{not json")
        with pytest.raises(LibraryFormatError, match="not valid JSON"):
            ClassLibrary.load(tmp_path / "lib")

    def test_wrong_format_name(self, lib3, tmp_path):
        lib3.save(tmp_path / "lib")
        _edit_manifest(tmp_path / "lib", lambda m: m.update(format="pickle-dump"))
        with pytest.raises(LibraryFormatError, match="not a repro-npn"):
            ClassLibrary.load(tmp_path / "lib")

    def test_unsupported_version(self, lib3, tmp_path):
        lib3.save(tmp_path / "lib")
        _edit_manifest(tmp_path / "lib", lambda m: m.update(version=99))
        with pytest.raises(LibraryFormatError, match="version 99"):
            ClassLibrary.load(tmp_path / "lib")

    def test_class_count_mismatch(self, lib3, tmp_path):
        lib3.save(tmp_path / "lib")
        _edit_manifest(
            tmp_path / "lib", lambda m: m["classes"].pop()
        )
        with pytest.raises(LibraryFormatError, match="number of classes"):
            ClassLibrary.load(tmp_path / "lib")

    def test_tampered_representative_hex(self, lib3, tmp_path):
        lib3.save(tmp_path / "lib")
        _edit_manifest(
            tmp_path / "lib",
            lambda m: m["classes"][0].update(representative="ff"),
        )
        with pytest.raises(LibraryFormatError, match="disagrees"):
            ClassLibrary.load(tmp_path / "lib")

    def test_tampered_table_words_fail_identity_check(self, lib3, tmp_path):
        """A rep swapped consistently in both files still fails the id check."""
        directory = tmp_path / "lib"
        lib3.save(directory)
        with np.load(directory / TABLES_FILE) as data:
            arrays = {name: data[name].copy() for name in data.files}
        # Swap class 0's representative for class 1's: both files stay
        # mutually consistent, but the stored id no longer names the
        # representative it now carries.
        arrays["reps"][0] = arrays["reps"][1]
        _write_raw_npz(directory / TABLES_FILE, arrays)
        _edit_manifest(
            directory,
            lambda m: m["classes"][0].update(
                representative=m["classes"][1]["representative"]
            ),
        )
        with pytest.raises(LibraryFormatError, match="does not name"):
            ClassLibrary.load(directory)
        # Without verification the corruption goes through — the flag
        # exists for trusted artifacts only.
        ClassLibrary.load(directory, verify=False)

    def test_corrupted_parts_field(self, lib3, tmp_path):
        lib3.save(tmp_path / "lib")
        _edit_manifest(tmp_path / "lib", lambda m: m.update(parts="garbage"))
        with pytest.raises(LibraryFormatError, match="parts are invalid"):
            ClassLibrary.load(tmp_path / "lib")

    def test_corrupted_zip_payload(self, lib3, tmp_path):
        lib3.save(tmp_path / "lib")
        (tmp_path / "lib" / TABLES_FILE).write_bytes(b"\x00" * 64)
        with pytest.raises(LibraryFormatError, match="cannot read"):
            ClassLibrary.load(tmp_path / "lib")


def _edit_manifest(directory, mutate) -> None:
    path = directory / MANIFEST_FILE
    manifest = json.loads(path.read_text())
    mutate(manifest)
    path.write_text(json.dumps(manifest))


def _write_raw_npz(path, arrays) -> None:
    with zipfile.ZipFile(path, "w", zipfile.ZIP_STORED) as archive:
        for name, array in arrays.items():
            with archive.open(f"{name}.npy", "w") as handle:
                np.lib.format.write_array(handle, array)


class TestIdSchemePersistence:
    """Canonical artifacts are version 2; legacy digest stays version 1."""

    def test_canonical_round_trip_is_version_2(self, lib3, tmp_path):
        lib3.save(tmp_path / "lib")
        manifest = json.loads((tmp_path / "lib" / MANIFEST_FILE).read_text())
        assert manifest["version"] == 2
        assert manifest["id_scheme"] == "canonical"
        loaded = ClassLibrary.load(tmp_path / "lib")
        assert loaded.id_scheme == "canonical"
        assert {e.class_id for e in loaded.entries()} == {
            e.class_id for e in lib3.entries()
        }

    def test_legacy_digest_artifact_stays_version_1(self, tmp_path):
        library = build_exhaustive_library(3, id_scheme="digest")
        library.save(tmp_path / "lib")
        manifest = json.loads((tmp_path / "lib" / MANIFEST_FILE).read_text())
        # Byte-compatible with pre-canonical writers: same version, no
        # id_scheme key.
        assert manifest["version"] == 1
        assert "id_scheme" not in manifest
        loaded = ClassLibrary.load(tmp_path / "lib")
        assert loaded.id_scheme == "digest"
        assert loaded.num_classes == library.num_classes

    def test_v2_manifest_with_unknown_scheme_rejected(self, lib3, tmp_path):
        lib3.save(tmp_path / "lib")
        _edit_manifest(
            tmp_path / "lib", lambda m: m.update(id_scheme="garbage")
        )
        with pytest.raises(LibraryFormatError, match="id scheme"):
            ClassLibrary.load(tmp_path / "lib")

    def test_cross_scheme_merge_rejected(self, lib3):
        digest_library = build_exhaustive_library(3, id_scheme="digest")
        with pytest.raises(ValueError, match="id schemes"):
            lib3.merged_with(digest_library)

    def test_load_rejects_non_minimum_canonical_rep(self, lib3, tmp_path):
        # Consistent tamper: replace one rep with a *non-minimum* orbit
        # member and rewrite its id to name the impostor.  The per-row id
        # check passes by construction; only the orbit-minimum
        # verification pass can catch it.
        directory = tmp_path / "lib"
        lib3.save(directory)
        victim = next(
            e for e in lib3.entries() if e.representative != ~e.representative
        )
        impostor = ~victim.representative  # same orbit, not the minimum
        bogus_id = f"n{impostor.n}-c{impostor.to_hex()}"
        with np.load(directory / TABLES_FILE) as data:
            arrays = {name: data[name].copy() for name in data.files}
        row = [e.class_id for e in lib3.entries()].index(victim.class_id)
        arrays["reps"][row][0] = impostor.bits
        _write_raw_npz(directory / TABLES_FILE, arrays)

        def tamper(manifest):
            record = manifest["classes"][row]
            record["id"] = bogus_id
            record["representative"] = impostor.to_hex()

        _edit_manifest(directory, tamper)
        with pytest.raises(LibraryFormatError, match="non-canonical"):
            ClassLibrary.load(directory)
        ClassLibrary.load(directory, verify=False)  # trusted escape hatch
