"""Tests for the learn-on-miss library (replay, mint, compact, recover).

Covers the :class:`LearningLibrary` lifecycle end to end — open with and
without an image, crash-recovery replay (including a torn final record),
minting with verified witnesses, overflow minting on signature
collision, the
segment-size compaction trip — plus the clean-miss pins: an empty
library and a segment-only library must answer unknown queries with an
honest miss, never an error.
"""

import random

import pytest

from repro.baselines.exact_enum import exact_npn_canonical
from repro.core.truth_table import TruthTable
from repro.library import (
    ClassLibrary,
    EXACT_REP_MAX_VARS,
    LearningLibrary,
    LibraryFormatError,
    SegmentWriter,
    WalError,
    build_exhaustive_library,
    list_segments,
    replay_segment,
)
from repro.library.wal import segment_path


def make_learner(tmp_path, **kwargs) -> LearningLibrary:
    return LearningLibrary.open(tmp_path, create=True, **kwargs)


class TestCleanMiss:
    """Satellite pin: no knowledge means a miss, never an exception."""

    def test_empty_library_match_is_none(self):
        library = ClassLibrary()
        tt = TruthTable.majority(3)
        assert library.match(tt) is None
        assert library.match_many([tt, ~tt]) == [None, None]

    def test_empty_library_match_many_still_validates_signatures(self):
        with pytest.raises(ValueError):
            ClassLibrary().match_many([TruthTable.majority(3)], signatures=[])

    def test_fresh_segment_only_library_misses_unknown_queries(self, tmp_path):
        # Knowledge exists solely in an un-compacted WAL segment; a query
        # outside it must miss cleanly through the replayed state too.
        learner = make_learner(tmp_path)
        learner.learn(TruthTable.majority(3))
        learner.close_segment()

        reopened = make_learner(tmp_path)
        assert reopened.segments  # still segment-only: no image written
        unknown = TruthTable.from_hex(6, "deadbeefcafe4242")
        assert reopened.library.match(unknown) is None

    def test_open_without_create_requires_an_image(self, tmp_path):
        with pytest.raises(LibraryFormatError):
            LearningLibrary.open(tmp_path / "nowhere")


class TestLearn:
    def test_mint_returns_verified_match_and_logs_record(self, tmp_path):
        learner = make_learner(tmp_path)
        tt = TruthTable.random(5, random.Random(1))
        outcome = learner.learn(tt)
        assert outcome is not None
        assert outcome.verify(tt)
        assert learner.minted == 1
        assert learner.pending_records == 1
        assert learner.library.num_classes == 1

        learner.close_segment()
        (segment,) = learner.segments
        (record,) = replay_segment(segment).records
        assert record["class_id"] == outcome.class_id
        assert record["n"] == 5

    def test_minted_rep_is_orbit_minimum_at_small_n(self, tmp_path):
        learner = make_learner(tmp_path)
        tt = TruthTable.random(EXACT_REP_MAX_VARS, random.Random(2))
        outcome = learner.learn(tt)
        assert outcome.entry.exact
        assert (
            outcome.representative
            == exact_npn_canonical(tt).representative
        )

    def test_identical_miss_resolves_against_minted_class(self, tmp_path):
        # The second identical miss in one batch races the mint; it must
        # resolve to the existing class without another record.
        learner = make_learner(tmp_path)
        tt = TruthTable.random(5, random.Random(3))
        first = learner.learn(tt)
        second = learner.learn(tt)
        assert second is not None
        assert second.class_id == first.class_id
        assert second.verify(tt)
        assert learner.minted == 1
        assert learner.pending_records == 1
        assert learner.collisions == 0

    def test_npn_image_of_minted_class_is_resolved_not_reminted(
        self, tmp_path
    ):
        learner = make_learner(tmp_path)
        tt = TruthTable.random(5, random.Random(4))
        learner.learn(tt)
        image = ~tt.flip_inputs(0b10101)
        outcome = learner.learn(image)
        assert outcome is not None
        assert outcome.verify(image)
        assert learner.minted == 1

    def test_signature_collision_mints_overflow_class(self, tmp_path):
        # Synthesize a collision: plant an NPN-inequivalent function
        # under the query's own digest, so learn() finds the base id
        # taken but the witness matcher proves the orbits differ.  The
        # query must land in the first free overflow slot — and repeat
        # traffic must converge to a verified hit via slot probing.
        from repro.core.msv import compute_msv
        from repro.library.store import NPNClassEntry

        learner = make_learner(tmp_path, id_scheme="digest")
        tt = TruthTable.random(5, random.Random(5))
        signature = compute_msv(tt, learner.library.parts)
        class_id = learner.library.class_id_of(signature)
        other = TruthTable(5, 0)  # constant-0: not NPN-equivalent to tt
        learner.library.classes[class_id] = NPNClassEntry.from_representative(
            class_id=class_id, representative=other, size=1, exact=False
        )
        outcome = learner.learn(tt, signature)
        assert outcome is not None
        assert outcome.class_id == f"{class_id}-1"
        assert outcome.verify(tt)
        assert learner.collisions == 1
        assert learner.minted == 1
        assert learner.overflow_minted == 1
        assert learner.stats()["signature_collisions"] == 1
        assert learner.stats()["overflow_minted"] == 1

        # The overflow class is now first-class knowledge: a repeat
        # query resolves through match_many's probe chain — the base
        # slot fails the witness check, the ``-1`` slot proves it.
        repeat = learner.library.match(tt)
        assert repeat is not None
        assert repeat.class_id == outcome.class_id
        assert repeat.verify(tt)
        assert learner.learn(tt, signature).class_id == outcome.class_id
        assert learner.minted == 1  # no second mint


class TestReplayAndRecovery:
    def test_reopen_replays_minted_classes(self, tmp_path):
        learner = make_learner(tmp_path)
        rng = random.Random(6)
        queries = [TruthTable.random(5, rng) for _ in range(6)]
        for tt in queries:
            learner.learn(tt)
        minted = learner.minted
        learner.close_segment()  # crash before compaction

        recovered = make_learner(tmp_path)
        assert recovered.library.num_classes == minted
        assert recovered.pending_records == minted
        for tt in queries:
            outcome = recovered.library.match(tt)
            assert outcome is not None and outcome.verify(tt)

    def test_reopen_tolerates_torn_final_record(self, tmp_path):
        learner = make_learner(tmp_path)
        rng = random.Random(7)
        for _ in range(3):
            learner.learn(TruthTable.random(5, rng))
        learner.close_segment()
        (segment,) = learner.segments
        data = segment.read_bytes()
        segment.write_bytes(data[:-5])  # tear mid-way through record 3

        recovered = make_learner(tmp_path)
        assert recovered.library.num_classes == 2
        assert recovered.pending_records == 2

    def test_replay_rejects_tampered_class_id(self, tmp_path):
        learner = make_learner(tmp_path)
        learner.learn(TruthTable.random(5, random.Random(8)))
        learner.close_segment()
        (segment,) = learner.segments
        (record,) = replay_segment(segment).records
        record["class_id"] = "n5-0000000000000000"
        segment.unlink()
        with SegmentWriter(segment) as writer:
            writer.append(record)
        with pytest.raises(WalError, match="identity check"):
            make_learner(tmp_path)

    def test_replay_rejects_missing_fields(self, tmp_path):
        with SegmentWriter(segment_path(tmp_path, 0)) as writer:
            writer.append({"class_id": "n5-00", "n": 5})
        with pytest.raises(WalError, match="missing fields"):
            make_learner(tmp_path)

    def test_replay_on_top_of_saved_image(self, tmp_path):
        base = build_exhaustive_library(3)
        base.save(tmp_path)
        learner = LearningLibrary.open(tmp_path)
        tt = TruthTable.from_hex(6, "0123456789abcdef")
        assert learner.library.match(tt) is None
        learner.learn(tt)
        learner.close_segment()

        recovered = LearningLibrary.open(tmp_path)
        assert recovered.library.num_classes == base.num_classes + 1
        hit = recovered.library.match(tt)
        assert hit is not None and hit.verify(tt)


class TestCompaction:
    def test_compact_merges_and_removes_segments(self, tmp_path):
        learner = make_learner(tmp_path)
        rng = random.Random(9)
        for _ in range(4):
            learner.learn(TruthTable.random(5, rng))
        result = learner.compact()
        assert result.merged_records == learner.library.num_classes
        assert result.removed_segments == 1
        assert result.path == tmp_path
        assert learner.segments == []
        assert learner.pending_records == 0

        # The compacted image alone now answers the learned classes.
        reloaded = ClassLibrary.load(tmp_path)
        assert reloaded.num_classes == learner.library.num_classes

    def test_compact_without_pending_work_is_a_noop(self, tmp_path):
        learner = make_learner(tmp_path)
        result = learner.compact()
        assert result.path is None
        assert result.merged_records == 0
        assert learner.compactions == 0

    def test_segment_threshold_trips_automatic_compaction(self, tmp_path):
        learner = make_learner(tmp_path, segment_bytes=1)
        learner.learn(TruthTable.random(5, random.Random(10)))
        # One record crosses the 1-byte threshold: compacted immediately.
        assert learner.compactions == 1
        assert learner.segments == []
        assert learner.pending_records == 0
        assert ClassLibrary.load(tmp_path).num_classes == 1

    def test_stats_counters(self, tmp_path):
        learner = make_learner(tmp_path)
        learner.learn(TruthTable.random(5, random.Random(11)))
        stats = learner.stats()
        assert stats == {
            "id_scheme": "canonical",
            "classes_minted": 1,
            "signature_collisions": 0,
            "overflow_minted": 0,
            "wal_pending_records": 1,
            "wal_segments": 1,
            "compactions": 0,
        }

    def test_invalid_segment_bytes_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            make_learner(tmp_path, segment_bytes=0)


class TestCollidingBatchRegression:
    """Pinned regression: colliding misses inside one coalesced batch.

    ``learn`` used to trust digest equality when deduplicating misses, so
    the second of two digest-colliding, NPN-inequivalent misses in one
    batch fused into the first's class.  The fix matcher-verifies every
    occupied slot before deduplicating and mints a fresh id otherwise.
    """

    def test_digest_pair_lands_in_distinct_slots(self, tmp_path):
        from repro.core.msv import compute_msv
        from repro.core.transforms import random_transform
        from repro.library.store import NPNClassEntry

        learner = make_learner(tmp_path, id_scheme="digest")
        rng = random.Random(21)
        tt = TruthTable.random(5, rng)
        signature = compute_msv(tt, learner.library.parts)
        base = learner.library.class_id_of(signature)
        # The colliding occupant a previous batch minted for a different
        # orbit (synthesized — real digest collisions are astronomically
        # rare to find by search).
        learner.library.classes[base] = NPNClassEntry.from_representative(
            class_id=base,
            representative=TruthTable(5, 0),
            size=1,
            exact=False,
        )
        # Batch of two misses from tt's orbit: the first must NOT be
        # fused into the colliding occupant; the second must dedup onto
        # the first via the matcher, not mint a third class.
        first = learner.learn(tt, signature)
        assert first is not None and first.class_id == f"{base}-1"
        assert first.verify(tt)
        image = tt.apply(random_transform(5, rng))
        second = learner.learn(image)
        assert second is not None and second.class_id == f"{base}-1"
        assert second.verify(image)
        assert learner.minted == 1
        assert learner.collisions == 1
        assert learner.overflow_minted == 1

    def test_canonical_pair_mints_distinct_pure_ids(self, tmp_path):
        from repro.canonical.form import canonical_class_id, canonical_form
        from repro.core.transforms import random_transform

        learner = make_learner(tmp_path)  # canonical default
        rng = random.Random(22)
        tt_a = TruthTable.random(5, rng)
        tt_b = TruthTable.random(5, rng)
        first = learner.learn(tt_a)
        second = learner.learn(tt_b)
        assert first.class_id != second.class_id
        # Ids are pure functions of the orbit — no overflow machinery.
        assert first.class_id == canonical_class_id(canonical_form(tt_a))
        assert second.class_id == canonical_class_id(canonical_form(tt_b))
        assert first.entry.exact and second.entry.exact
        assert learner.collisions == 0
        assert learner.overflow_minted == 0
        # A duplicate miss (same batch, different orbit member) resolves
        # to the existing class without a second mint.
        repeat = learner.learn(tt_a.apply(random_transform(5, rng)))
        assert repeat.class_id == first.class_id
        assert learner.minted == 2

    def test_canonical_mints_survive_replay(self, tmp_path):
        learner = make_learner(tmp_path)
        tt = TruthTable.random(6, random.Random(23))
        minted = learner.learn(tt)
        learner.close()
        reopened = make_learner(tmp_path)
        hit = reopened.library.match(tt)
        assert hit is not None and hit.class_id == minted.class_id
        assert hit.verify(tt)
        reopened.close()
