"""Overflow class ids and memory-mapped library loading.

Two store-layer extensions ride the serving scale-out work: digest
collisions mint contiguous overflow slots (``n{n}-{digest}-1``, ``-2``,
…) that ``match_many`` probes round by round, and ``ClassLibrary.load``
can memory-map the STORED ``classes.npz`` members so N serving replicas
share one page-cache image of the library.
"""

import numpy as np
import pytest

from repro.core.msv import compute_msv
from repro.core.transforms import random_transform
from repro.core.truth_table import TruthTable
from repro.library import (
    ClassLibrary,
    LearningLibrary,
    build_exhaustive_library,
    class_id_matches,
    overflow_successor,
)
from repro.library.store import (
    NPNClassEntry,
    TABLES_FILE,
    _mmap_tables,
    _read_tables,
)
from repro.library.wal import SegmentWriter, segment_path

import random


class TestOverflowIds:
    def test_successor_chain_is_contiguous(self):
        base = "n6-0123456789abcdef"
        assert overflow_successor(base) == f"{base}-1"
        assert overflow_successor(f"{base}-1") == f"{base}-2"
        assert overflow_successor(f"{base}-9") == f"{base}-10"

    def test_successor_of_all_digit_digest(self):
        # A digest that happens to be all decimal digits must not be
        # mistaken for an overflow suffix on the *base* id.
        assert overflow_successor("n5-1234567812345678") == (
            "n5-1234567812345678-1"
        )

    def test_class_id_matches_accepts_base_and_slots(self):
        derived = "n5-00ff00ff00ff00ff"
        assert class_id_matches(derived, derived)
        assert class_id_matches(f"{derived}-1", derived)
        assert class_id_matches(f"{derived}-27", derived)

    def test_class_id_matches_rejects_malformed_suffixes(self):
        derived = "n5-00ff00ff00ff00ff"
        for stored in (
            f"{derived}-0",     # slots start at 1
            f"{derived}-01",    # no leading zeros
            f"{derived}-x",     # not a number
            f"{derived}1",      # no separator
            "n5-deadbeefdeadbeef",  # different digest entirely
        ):
            assert not class_id_matches(stored, derived), stored

    def test_add_class_rejects_foreign_explicit_id(self):
        library = ClassLibrary(id_scheme="digest")
        with pytest.raises(ValueError, match="overflow slot"):
            library.add_class(
                TruthTable.majority(3),
                size=1,
                exact=False,
                class_id="n3-0000000000000000-1",
            )


def plant_collision(library: ClassLibrary, tt: TruthTable) -> str:
    """Occupy ``tt``'s base slot with an NPN-inequivalent function.

    Digest collisions are real but astronomically rare to find by
    search, so tests synthesize one: the constant-0 function is parked
    under ``tt``'s own base id, forcing ``tt`` into overflow.  Returns
    the base id.
    """
    base = library.class_id_of(compute_msv(tt, library.parts))
    library.classes[base] = NPNClassEntry.from_representative(
        class_id=base,
        representative=TruthTable(tt.n, 0),
        size=1,
        exact=False,
    )
    return base


class TestOverflowMatching:
    def test_match_probes_past_colliding_base_slot(self):
        library = ClassLibrary(id_scheme="digest")
        tt = TruthTable.random(5, random.Random(60))
        base = plant_collision(library, tt)
        library.add_class(tt, size=1, exact=False, class_id=f"{base}-1")
        hit = library.match(tt)
        assert hit is not None
        assert hit.class_id == f"{base}-1"
        assert hit.verify(tt)

    def test_match_probes_two_slots_deep(self):
        library = ClassLibrary(id_scheme="digest")
        tt = TruthTable.random(5, random.Random(61))
        base = plant_collision(library, tt)
        library.classes[f"{base}-1"] = NPNClassEntry.from_representative(
            class_id=f"{base}-1",
            representative=TruthTable(5, (1 << 32) - 1),  # also inequivalent
            size=1,
            exact=False,
        )
        library.add_class(tt, size=1, exact=False, class_id=f"{base}-2")
        hit = library.match(tt)
        assert hit is not None
        assert hit.class_id == f"{base}-2"
        assert hit.verify(tt)

    def test_npn_images_resolve_to_the_overflow_slot(self):
        library = ClassLibrary(id_scheme="digest")
        rng = random.Random(62)
        tt = TruthTable.random(5, rng)
        base = plant_collision(library, tt)
        library.add_class(tt, size=1, exact=False, class_id=f"{base}-1")
        for _ in range(5):
            image = tt.apply(random_transform(5, rng))
            hit = library.match(image)
            assert hit is not None
            assert hit.class_id == f"{base}-1"
            assert hit.verify(image)

    def test_chain_end_is_still_a_clean_miss(self):
        # Base occupied, no overflow slot minted yet: the probe chain
        # ends and the query reports an honest miss.
        library = ClassLibrary(id_scheme="digest")
        tt = TruthTable.random(5, random.Random(63))
        plant_collision(library, tt)
        assert library.match(tt) is None


class TestOverflowPersistence:
    def test_overflow_id_survives_save_and_verified_load(self, tmp_path):
        # An overflow entry of an orbit whose base slot is also present
        # passes load's signature verification via the base-id match.
        library = ClassLibrary(id_scheme="digest")
        rng = random.Random(64)
        tt = TruthTable.random(5, rng)
        base = library.class_id_of(compute_msv(tt, library.parts))
        library.add_class(tt, size=1, exact=False)
        image = tt.apply(random_transform(5, rng))
        library.add_class(image, size=1, exact=False, class_id=f"{base}-1")
        library.save(tmp_path)
        loaded = ClassLibrary.load(tmp_path)  # verify=True
        assert set(loaded.classes) == {base, f"{base}-1"}

    def test_wal_replay_honours_overflow_record_ids(self, tmp_path):
        learner = LearningLibrary.open(
            tmp_path, create=True, id_scheme="digest"
        )
        tt = TruthTable.random(5, random.Random(65))
        base = plant_collision(learner.library, tt)
        outcome = learner.learn(tt)
        assert outcome.class_id == f"{base}-1"
        learner.close()

        # Re-plant after reopening: the planted base entry was never a
        # WAL record, but the overflow record must still replay into its
        # recorded slot rather than being re-derived into the base slot.
        reopened = LearningLibrary.open(
            tmp_path, create=True, id_scheme="digest"
        )
        assert f"{base}-1" in reopened.library.classes
        plant_collision(reopened.library, tt)
        hit = reopened.library.match(tt)
        assert hit is not None and hit.class_id == f"{base}-1"
        reopened.close()

    def test_replay_rejects_unrelated_overflow_id(self, tmp_path):
        from repro.library import WalError

        tt = TruthTable.random(5, random.Random(66))
        with SegmentWriter(segment_path(tmp_path, 0)) as writer:
            writer.append(
                {
                    "class_id": "n5-0000000000000000-1",
                    "n": 5,
                    "representative": tt.to_hex(),
                    "size": 1,
                    "exact": False,
                }
            )
        with pytest.raises(WalError, match="identity check"):
            LearningLibrary.open(tmp_path, create=True, id_scheme="digest")


@pytest.fixture(scope="module")
def saved_lib3(tmp_path_factory):
    directory = tmp_path_factory.mktemp("lib3")
    build_exhaustive_library(3).save(directory)
    return directory


class TestMmapLoad:
    def test_mmap_load_matches_eager_load(self, saved_lib3):
        eager = ClassLibrary.load(saved_lib3)
        mapped = ClassLibrary.load(saved_lib3, mmap_mode="r")
        assert set(mapped.classes) == set(eager.classes)
        for class_id, entry in eager.classes.items():
            other = mapped.classes[class_id]
            assert other.representative == entry.representative
            assert other.size == entry.size
            assert other.exact == entry.exact
        maj = TruthTable.majority(3)
        assert mapped.match(maj).class_id == eager.match(maj).class_id

    def test_tables_really_are_memory_mapped(self, saved_lib3):
        arrays = _read_tables(saved_lib3 / TABLES_FILE, mmap_mode="r")
        assert set(arrays) == {"ns", "sizes", "exact", "reps"}
        for name, array in arrays.items():
            assert isinstance(array, np.memmap), name

    def test_write_modes_are_rejected(self, saved_lib3):
        with pytest.raises(ValueError, match="mmap_mode"):
            ClassLibrary.load(saved_lib3, mmap_mode="w+")
        with pytest.raises(ValueError, match="mmap_mode"):
            ClassLibrary.load(saved_lib3, mmap_mode="r+")

    def test_compressed_archive_falls_back_to_eager_read(self, tmp_path):
        # A foreign tool may rewrite classes.npz with DEFLATE members;
        # the mapper must decline (offsets point at compressed bytes)
        # and the eager path must still serve the load.
        library = build_exhaustive_library(3)
        library.save(tmp_path)
        with np.load(tmp_path / TABLES_FILE) as data:
            arrays = {name: data[name] for name in data.files}
        np.savez_compressed(tmp_path / TABLES_FILE, **arrays)
        assert _mmap_tables(tmp_path / TABLES_FILE, "r") is None
        loaded = ClassLibrary.load(tmp_path, mmap_mode="r")
        assert loaded.num_classes == library.num_classes


class TestOverflowMergeReconciliation:
    """Pinned regression: merge must re-verify colliding representatives.

    Two digest libraries that independently minted the same overflow id
    for *different* orbits used to fuse them silently on merge.  The fix
    matcher-verifies every colliding entry and re-slots the loser along
    its derived chain instead.
    """

    def test_inequivalent_colliding_entries_are_reslotted(self):
        from repro.baselines.matcher import find_npn_transform

        rng = random.Random(71)
        tt_a = TruthTable.random(5, rng)
        tt_b = TruthTable.random(5, rng)
        assert find_npn_transform(tt_a, tt_b) is None

        lib_a = ClassLibrary(id_scheme="digest")
        base = plant_collision(lib_a, tt_a)
        lib_a.add_class(tt_a, size=1, exact=False, class_id=f"{base}-1")

        lib_b = ClassLibrary(id_scheme="digest")
        plant_collision(lib_b, tt_a)  # identical planted base entry
        # lib_b minted the same -1 slot for a different orbit.
        lib_b.classes[f"{base}-1"] = NPNClassEntry.from_representative(
            class_id=f"{base}-1",
            representative=tt_b,
            size=1,
            exact=False,
        )

        merged = lib_a.merged_with(lib_b)
        # Identical base entries fuse; the -1 slot keeps lib_a's orbit.
        assert merged.classes[base].size == 2
        assert merged.classes[f"{base}-1"].representative == lib_a.classes[
            f"{base}-1"
        ].representative
        # lib_b's inequivalent entry is re-slotted under its own derived
        # chain — never silently fused into tt_a's class.
        derived_b = lib_b.class_id_of(compute_msv(tt_b, lib_b.parts))
        assert merged.classes[derived_b].representative == tt_b
        # Both orbits stay matchable after the merge.
        hit_a = merged.match(tt_a)
        assert hit_a is not None and hit_a.class_id == f"{base}-1"
        hit_b = merged.match(tt_b)
        assert hit_b is not None and hit_b.verify(tt_b)

    def test_reslot_walks_past_occupied_derived_chain(self):
        # The re-slotted entry's own derived base may be taken too: the
        # walk continues to the first free slot of *that* chain.
        rng = random.Random(72)
        tt_a = TruthTable.random(5, rng)
        tt_b = TruthTable.random(5, rng)

        lib_a = ClassLibrary(id_scheme="digest")
        base = plant_collision(lib_a, tt_a)
        lib_a.add_class(tt_a, size=1, exact=False, class_id=f"{base}-1")
        plant_collision(lib_a, tt_b)  # occupy tt_b's own base in lib_a

        lib_b = ClassLibrary(id_scheme="digest")
        plant_collision(lib_b, tt_a)
        lib_b.classes[f"{base}-1"] = NPNClassEntry.from_representative(
            class_id=f"{base}-1",
            representative=tt_b,
            size=1,
            exact=False,
        )

        merged = lib_a.merged_with(lib_b)
        derived_b = lib_b.class_id_of(compute_msv(tt_b, lib_b.parts))
        assert merged.classes[f"{derived_b}-1"].representative == tt_b
        hit_b = merged.match(tt_b)
        assert hit_b is not None and hit_b.class_id == f"{derived_b}-1"
