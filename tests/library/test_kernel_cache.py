"""Library-backed gather-table persistence and batched match parity."""

import random

import pytest

from repro.core.transforms import random_transform
from repro.core.truth_table import TruthTable
from repro.kernels.gather import clear_memory_cache
from repro.library import ClassLibrary, build_library
from repro.workloads import random_tables


@pytest.fixture(autouse=True)
def fresh_kernel_cache():
    clear_memory_cache()
    yield
    clear_memory_cache()


@pytest.fixture()
def mixed_library():
    tables = random_tables(4, 60, 1) + random_tables(5, 60, 2) + random_tables(
        6, 60, 3
    )
    return build_library(tables), tables


class TestKernelCacheDir:
    def test_fresh_library_has_no_cache_dir(self):
        assert ClassLibrary().kernel_cache_dir is None

    def test_save_sets_cache_dir_lazily(self, tmp_path, mixed_library):
        library, tables = mixed_library
        library.save(tmp_path / "lib")
        assert library.kernel_cache_dir == tmp_path / "lib" / "kernels"
        # Nothing written until a match actually builds a gather table.
        assert not (tmp_path / "lib" / "kernels").exists()
        library.match(tables[0])
        cached = list((tmp_path / "lib" / "kernels").glob("gather_n*.npz"))
        assert cached, "matching must persist the gather table it built"

    def test_loaded_library_reuses_persisted_tables(self, tmp_path, mixed_library):
        library, tables = mixed_library
        library.save(tmp_path / "lib")
        library.match_many(tables)
        persisted = sorted(
            p.name for p in (tmp_path / "lib" / "kernels").glob("*.npz")
        )
        assert persisted
        clear_memory_cache()
        reloaded = ClassLibrary.load(tmp_path / "lib")
        assert reloaded.kernel_cache_dir == tmp_path / "lib" / "kernels"
        rng = random.Random(9)
        for tt in tables[:20]:
            image = tt.apply(random_transform(tt.n, rng))
            hit = reloaded.match(image)
            assert hit is not None and hit.verify(image)

    def test_match_without_cache_dir_writes_nothing(
        self, tmp_path, monkeypatch, mixed_library
    ):
        monkeypatch.chdir(tmp_path)
        library, tables = mixed_library
        library.match_many(tables[:10])
        assert not any(tmp_path.rglob("*.npz"))


class TestBatchedMatchParity:
    def test_match_many_equals_singles_with_witness_search(self, mixed_library):
        """Grouped bulk matching returns exactly what per-query match
        does — across arities, hits, misses, and planted orbits."""
        library, tables = mixed_library
        rng = random.Random(17)
        queries = []
        for tt in tables[::5]:
            queries.append(tt.apply(random_transform(tt.n, rng)))  # witness
            queries.append(tt)  # identity
        queries += random_tables(6, 40, 99)  # mostly misses
        rng.shuffle(queries)
        bulk = library.match_many(queries)
        for query, outcome in zip(queries, bulk):
            single = library.match(query)
            assert (single is None) == (outcome is None)
            if outcome is not None:
                assert outcome.class_id == single.class_id
                assert outcome.transform == single.transform
                assert outcome.verify(query)

    def test_queries_sharing_a_class_are_resolved_together(self, mixed_library):
        library, tables = mixed_library
        rng = random.Random(23)
        base = tables[0]
        group = [base.apply(random_transform(base.n, rng)) for _ in range(12)]
        outcomes = library.match_many(group)
        class_ids = {o.class_id for o in outcomes}
        assert len(class_ids) == 1
        for query, outcome in zip(group, outcomes):
            assert outcome.verify(query)
