"""Unit tests for the metrics registry primitives.

These tests build *private* :class:`MetricsRegistry` instances rather
than touching the process-global one: the global registry accumulates
counts from every other test in the session, so asserting absolute
values there would be order-dependent.  The global registry is covered
by the service-level tests (which assert deltas).
"""

import threading

import pytest

from repro.obs import (
    BATCH_SIZE_BUCKETS,
    DEFAULT_TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    log_buckets,
    set_enabled,
)


class TestLogBuckets:
    def test_one_two_five_per_decade(self):
        assert log_buckets(-1, 0) == (0.1, 0.2, 0.5, 1.0, 2.0, 5.0)

    def test_bounds_roundtrip_cleanly(self):
        # float("1e-05") has an exact short repr; 10**-5 may not.
        for bound in log_buckets(-6, 3):
            assert float(repr(bound)) == bound

    def test_empty_range_rejected(self):
        with pytest.raises(ValueError):
            log_buckets(2, 1)

    def test_default_time_buckets_span_10us_to_10s(self):
        assert DEFAULT_TIME_BUCKETS[0] == 1e-5
        assert DEFAULT_TIME_BUCKETS[-1] == 10.0
        assert list(DEFAULT_TIME_BUCKETS) == sorted(DEFAULT_TIME_BUCKETS)

    def test_batch_size_buckets_are_powers_of_two(self):
        assert BATCH_SIZE_BUCKETS[0] == 1.0
        assert all(
            b == 2 * a for a, b in zip(BATCH_SIZE_BUCKETS, BATCH_SIZE_BUCKETS[1:])
        )


class TestCounter:
    def test_inc_and_value(self):
        c = Counter("t_total", "test")
        assert c.value() == 0.0
        c.inc()
        c.inc(2.5)
        assert c.value() == 3.5

    def test_labelled_series_are_independent(self):
        c = Counter("t_total", "test", labels=("op",))
        c.inc(op="match")
        c.inc(3, op="classify")
        assert c.value(op="match") == 1.0
        assert c.value(op="classify") == 3.0
        assert c.value(op="ping") == 0.0

    def test_negative_increment_rejected(self):
        c = Counter("t_total", "test")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_wrong_label_set_rejected(self):
        c = Counter("t_total", "test", labels=("op",))
        with pytest.raises(ValueError):
            c.inc(kind="x")
        with pytest.raises(ValueError):
            c.inc()  # missing the required label

    def test_invalid_names_rejected(self):
        with pytest.raises(ValueError):
            Counter("9starts_with_digit", "test")
        with pytest.raises(ValueError):
            Counter("ok_total", "test", labels=("bad-label",))


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("t_bytes", "test")
        g.set(10)
        g.inc(5)
        g.dec(3)
        assert g.value() == 12.0

    def test_gauges_can_go_negative(self):
        g = Gauge("t_bytes", "test")
        g.dec(4)
        assert g.value() == -4.0


class TestHistogram:
    def test_bucket_placement_le_semantics(self):
        h = Histogram("t_seconds", "test", buckets=(1.0, 2.0, 5.0))
        for value in (0.5, 1.0, 1.5, 2.0, 4.9, 5.0, 100.0):
            h.observe(value)
        series = h.series()
        # Cumulative: le=1 catches {0.5, 1.0}; le=2 adds {1.5, 2.0}; ...
        assert series["buckets"] == {"1": 2, "2": 4, "5": 6}
        assert series["count"] == 7  # +Inf bucket catches 100.0
        assert series["sum"] == pytest.approx(114.9)

    def test_unseen_series_reads_as_zeros(self):
        h = Histogram("t_seconds", "test", buckets=(1.0,), labels=("op",))
        assert h.series(op="never") == {"count": 0, "sum": 0.0, "buckets": {"1": 0}}

    def test_unsorted_bounds_rejected(self):
        with pytest.raises(ValueError):
            Histogram("t_seconds", "test", buckets=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("t_seconds", "test", buckets=(1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("t_seconds", "test", buckets=())


class TestRegistry:
    def test_reregistration_returns_same_family(self):
        reg = MetricsRegistry()
        a = reg.counter("x_total", "first")
        b = reg.counter("x_total", "second help ignored")
        assert a is b

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("x_total", "h")
        with pytest.raises(ValueError):
            reg.gauge("x_total", "h")

    def test_label_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("x_total", "h", labels=("op",))
        with pytest.raises(ValueError):
            reg.counter("x_total", "h", labels=("kind",))

    def test_bucket_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.histogram("x_seconds", "h", buckets=(1.0, 2.0))
        with pytest.raises(ValueError):
            reg.histogram("x_seconds", "h", buckets=(1.0, 3.0))

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("a_total", "ha", labels=("op",)).inc(op="m")
        reg.histogram("b_seconds", "hb", buckets=(1.0,)).observe(0.5)
        snap = reg.snapshot()
        assert snap["a_total"]["type"] == "counter"
        assert snap["a_total"]["series"] == [
            {"labels": {"op": "m"}, "value": 1.0}
        ]
        assert snap["b_seconds"]["series"][0]["buckets"] == {"1": 1}

    def test_render_families_sorted_by_name(self):
        reg = MetricsRegistry()
        reg.counter("z_total", "hz").inc()
        reg.counter("a_total", "ha").inc()
        text = reg.render()
        assert text.index("a_total") < text.index("z_total")
        assert text.endswith("\n")

    def test_render_escapes_label_values(self):
        reg = MetricsRegistry()
        reg.counter("e_total", "he", labels=("msg",)).inc(msg='say "hi"\n')
        assert 'msg="say \\"hi\\"\\n"' in reg.render()


class TestEnabledFlag:
    def test_disabled_recording_is_a_noop(self):
        c = Counter("t_total", "test")
        h = Histogram("t_seconds", "test", buckets=(1.0,))
        previous = set_enabled(False)
        try:
            c.inc(5)
            h.observe(0.5)
        finally:
            set_enabled(previous)
        assert c.value() == 0.0
        assert h.series()["count"] == 0

    def test_set_enabled_returns_previous_state(self):
        previous = set_enabled(False)
        try:
            assert set_enabled(True) is False
            assert set_enabled(True) is True
        finally:
            set_enabled(previous)


class TestThreadSafety:
    def test_concurrent_counter_increments_all_land(self):
        c = Counter("t_total", "test", labels=("op",))
        h = Histogram("t_seconds", "test", buckets=(1.0, 2.0))
        rounds, workers = 2_000, 8

        def hammer(op):
            for _ in range(rounds):
                c.inc(op=op)
                h.observe(0.5)

        threads = [
            threading.Thread(target=hammer, args=(f"op{i % 2}",))
            for i in range(workers)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value(op="op0") + c.value(op="op1") == rounds * workers
        series = h.series()
        assert series["count"] == rounds * workers
        assert series["buckets"]["1"] == rounds * workers
