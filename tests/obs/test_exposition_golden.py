"""Golden-file test of the Prometheus text exposition format.

A deterministic private registry (fixed observations, no wall-clock
values) must render byte-identically to
``tests/data/golden_metrics.prom``.  This pins every formatting rule a
scraper depends on — family ordering, ``# HELP``/``# TYPE`` headers,
label escaping, cumulative ``le`` buckets with the implicit ``+Inf``,
``_sum``/``_count`` rows, and integral-value rendering — so exposition
regressions show up as a readable text diff.

Regenerate after an intentional format change with::

    PYTHONPATH=src python tests/obs/test_exposition_golden.py
"""

from pathlib import Path

from repro.obs import MetricsRegistry

GOLDEN = Path(__file__).parent.parent / "data" / "golden_metrics.prom"


def build_reference_registry() -> MetricsRegistry:
    """A registry exercising every sample shape the renderer emits."""
    reg = MetricsRegistry()
    requests = reg.counter(
        "demo_requests_total", "Requests by op.", labels=("op",)
    )
    requests.inc(3, op="match")
    requests.inc(op="classify")
    reg.counter("demo_unlabelled_total", "A bare counter.").inc(2.5)
    live = reg.gauge("demo_live_bytes", "Live bytes.", labels=("pool",))
    live.set(65536, pool="shm")
    live.set(-12.25, pool="debt")
    escapes = reg.counter(
        "demo_escapes_total", "Label escaping.", labels=("msg",)
    )
    escapes.inc(msg='quote " backslash \\ newline \n end')
    latency = reg.histogram(
        "demo_seconds",
        "Latency with labels.",
        labels=("op",),
        buckets=(0.001, 0.01, 0.1, 1.0),
    )
    for value in (0.0005, 0.001, 0.05, 0.2, 5.0):
        latency.observe(value, op="match")
    latency.observe(0.002, op="classify")
    reg.histogram(
        "demo_plain_seconds", "Unlabelled histogram.", buckets=(1.0, 2.5)
    ).observe(2.0)
    return reg


def test_exposition_matches_golden_file():
    rendered = build_reference_registry().render()
    assert rendered == GOLDEN.read_text()


if __name__ == "__main__":  # pragma: no cover - regeneration helper
    GOLDEN.write_text(build_reference_registry().render())
    print(f"wrote {GOLDEN}")
