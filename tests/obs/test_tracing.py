"""Unit tests for spans, traces, and the bounded trace rings."""

import logging

import pytest

from repro.obs import Trace, Tracer, set_enabled


class TestTrace:
    def test_span_context_manager_records_interval(self):
        trace = Trace("match")
        with trace.span("signatures", {"batch": 4}):
            pass
        assert [s.name for s in trace.spans] == ["signatures"]
        span = trace.spans[0]
        assert span.meta == {"batch": 4}
        assert span.end >= span.start

    def test_add_span_and_as_dict_offsets(self):
        trace = Trace("match", meta={"transport": "ndjson"})
        trace.add_span(
            "queue", trace.origin, trace.origin + 0.002, {"batch": 7}
        )
        trace.annotate(cache="miss")
        out = trace.as_dict()
        assert out["op"] == "match"
        assert out["meta"] == {"transport": "ndjson", "cache": "miss"}
        assert out["duration_ms"] is None  # not finished yet
        (span,) = out["spans"]
        assert span["name"] == "queue"
        assert span["start_ms"] == 0.0
        assert span["duration_ms"] == pytest.approx(2.0)
        assert span["meta"] == {"batch": 7}

    def test_trace_ids_are_unique(self):
        ids = {Trace("x").trace_id for _ in range(100)}
        assert len(ids) == 100


class TestTracer:
    def test_finish_sets_duration_and_stores(self):
        tracer = Tracer(capacity=8, slow_ms=0)
        trace = tracer.start("match")
        tracer.finish(trace)
        assert trace.duration_ms is not None and trace.duration_ms >= 0
        assert tracer.finished_total == 1
        (recent,) = tracer.recent()
        assert recent["trace_id"] == trace.trace_id

    def test_ring_is_bounded_newest_first(self):
        tracer = Tracer(capacity=3, slow_ms=0)
        traces = [tracer.start(f"op{i}") for i in range(5)]
        for trace in traces:
            tracer.finish(trace)
        recent = tracer.recent()
        assert [t["op"] for t in recent] == ["op4", "op3", "op2"]
        assert tracer.finished_total == 5
        assert tracer.recent(limit=1)[0]["op"] == "op4"

    def test_slow_threshold_splits_rings(self, caplog):
        tracer = Tracer(capacity=8, slow_ms=1e-9)  # everything is slow
        with caplog.at_level(logging.WARNING, logger="repro.obs.slow"):
            tracer.finish(tracer.start("match"))
        assert tracer.slow_total == 1
        assert len(tracer.slow_recent()) == 1
        assert "slow request" in caplog.text

    def test_slow_ms_zero_disables_slow_ring(self):
        tracer = Tracer(capacity=8, slow_ms=0)
        tracer.finish(tracer.start("match"))
        assert tracer.slow_total == 0
        assert tracer.slow_recent() == []
        assert tracer.finished_total == 1

    def test_start_returns_none_when_disabled(self):
        tracer = Tracer()
        previous = set_enabled(False)
        try:
            trace = tracer.start("match")
        finally:
            set_enabled(previous)
        assert trace is None
        tracer.finish(trace)  # a None trace is silently ignored
        assert tracer.finished_total == 0

    def test_snapshot(self):
        tracer = Tracer(capacity=4, slow_ms=123.0)
        tracer.finish(tracer.start("match"))
        assert tracer.snapshot() == {
            "capacity": 4,
            "stored": 1,
            "sample_every": 1,
            "started_total": 1,
            "finished_total": 1,
            "slow_ms": 123.0,
            "slow_total": 0,
        }

    def test_head_sampling_every_nth(self):
        tracer = Tracer(capacity=16, slow_ms=0, sample_every=4)
        traced = [tracer.start("match") for _ in range(8)]
        sampled = [t for t in traced if t is not None]
        assert len(sampled) == 2  # requests 1 and 5
        assert traced[0] is not None and traced[4] is not None
        for trace in sampled:
            tracer.finish(trace)
        assert tracer.started_total == 2
        assert tracer.finished_total == 2

    def test_sample_every_validated(self):
        with pytest.raises(ValueError):
            Tracer(sample_every=0)
