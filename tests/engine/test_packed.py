"""Packed-batch representation and word kernels vs. the big-int oracle."""

import numpy as np
import pytest

from repro.core import bitops
from repro.core.truth_table import TruthTable
from repro.engine.packed import (
    PackedTables,
    flip_input_packed,
    masked_popcount_rows,
    popcount_rows,
    popcount_words,
    sensitivity_words_packed,
    unpack_bits,
)
from repro.workloads import random_tables


class TestPackedTables:
    @pytest.mark.parametrize("n", [0, 1, 3, 5, 6, 7, 8])
    def test_roundtrip(self, n):
        tables = random_tables(n, 17, seed=n)
        packed = PackedTables.from_tables(tables)
        assert len(packed) == 17
        assert packed.words.shape == (17, bitops.words_per_table(n))
        assert packed.to_tables() == tables
        assert packed.to_ints() == [tt.bits for tt in tables]
        assert packed.table(3) == tables[3]

    def test_from_ints_matches_to_words(self):
        tables = random_tables(7, 5, seed=1)
        packed = PackedTables.from_ints(7, [tt.bits for tt in tables])
        for row, tt in zip(packed.words, tables):
            assert np.array_equal(row, bitops.to_words(tt.bits, 7))

    def test_rejects_empty_batch(self):
        with pytest.raises(ValueError):
            PackedTables.from_tables([])
        with pytest.raises(ValueError):
            PackedTables.from_ints(4, [])

    def test_rejects_mixed_arities(self):
        with pytest.raises(ValueError, match="mixed arities"):
            PackedTables.from_tables([TruthTable(3, 5), TruthTable(4, 5)])

    def test_rejects_overflowing_small_tables(self):
        with pytest.raises(ValueError, match="does not fit"):
            PackedTables(3, np.array([[1 << 9]], dtype=np.uint64))

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError, match="shape"):
            PackedTables(7, np.zeros((4, 1), dtype=np.uint64))

    def test_owns_a_frozen_copy_of_the_input(self):
        source = np.array([[0b1110_1000]], dtype=np.uint64)
        packed = PackedTables(3, source)
        source[0, 0] = 0xFFFF_FFFF  # caller mutation must not leak in
        assert packed.to_ints() == [0b1110_1000]
        with pytest.raises(ValueError):
            packed.words[0, 0] = 0


class TestKernels:
    @pytest.fixture(params=[1, 4, 6, 7, 8], scope="class")
    def batch(self, request):
        n = request.param
        tables = random_tables(n, 23, seed=100 + n)
        return tables, PackedTables.from_tables(tables)

    def test_popcount_rows(self, batch):
        tables, packed = batch
        expected = [tt.count_ones() for tt in tables]
        assert popcount_rows(packed.words).tolist() == expected

    def test_popcount_words_fallback_path(self):
        values = np.array([[0, 1, 0xFFFF_FFFF_FFFF_FFFF, 0x8000_0000_0000_0001]],
                          dtype=np.uint64)
        assert popcount_words(values).tolist() == [[0, 1, 64, 2]]

    def test_masked_popcount_single_and_stacked(self, batch):
        tables, packed = batch
        n = packed.n
        for i in range(n):
            mask = bitops.var_mask_words(n, i)
            expected = [
                bitops.popcount(tt.bits & bitops.var_mask(n, i)) for tt in tables
            ]
            assert masked_popcount_rows(packed.words, mask).tolist() == expected
        if n:
            stack = np.stack([bitops.var_mask_words(n, i) for i in range(n)])
            got = masked_popcount_rows(packed.words, stack)
            assert got.shape == (len(tables), n)

    def test_flip_input_matches_bitops(self, batch):
        tables, packed = batch
        n = packed.n
        for i in range(n):
            flipped = flip_input_packed(packed.words, n, i)
            expected = [bitops.flip_input(tt.bits, n, i) for tt in tables]
            assert PackedTables(n, flipped).to_ints() == expected

    def test_sensitivity_words_match_bitops(self, batch):
        tables, packed = batch
        n = packed.n
        for i in range(n):
            sens = sensitivity_words_packed(packed.words, n, i)
            expected = [bitops.sensitivity_word(tt.bits, n, i) for tt in tables]
            assert PackedTables(n, sens).to_ints() == expected

    def test_flip_input_rejects_bad_index(self, batch):
        _, packed = batch
        with pytest.raises(ValueError):
            flip_input_packed(packed.words, packed.n, packed.n)

    def test_unpack_bits_matches_bit_array(self, batch):
        tables, packed = batch
        bits = unpack_bits(packed)
        assert bits.shape == (len(tables), 1 << packed.n)
        for row, tt in zip(bits, tables):
            assert np.array_equal(row, tt.bit_array())


class TestWordConversions:
    @pytest.mark.parametrize("n", [0, 2, 6, 9])
    def test_to_from_words_roundtrip(self, n):
        for tt in random_tables(n, 10, seed=n + 50):
            words = bitops.to_words(tt.bits, n)
            assert words.shape == (bitops.words_per_table(n),)
            assert bitops.from_words(words, n) == tt.bits

    def test_from_words_rejects_wrong_length(self):
        with pytest.raises(ValueError):
            bitops.from_words(np.zeros(2, dtype=np.uint64), 6)

    def test_var_mask_words_matches_var_mask(self):
        for n in (3, 6, 8):
            for i in range(n):
                assert (
                    bitops.from_words(bitops.var_mask_words(n, i), n)
                    == bitops.var_mask(n, i)
                )
