"""Shared-memory transport: parity, arena lifecycle, crash cleanup.

The shm transport's contract has two halves.  *Correctness*: buckets are
byte-identical to the pickle transport and ``BatchedClassifier`` for
every worker count and shard size, because the key codec round-trips
canonical keys through flat ``int64`` rows exactly.  *Hygiene*: every
arena this process creates is gone — from the registry and from
``/dev/shm`` — after normal completion, a killed worker, and a
SIGTERM'd parent alike.
"""

import os
import signal
import subprocess
import sys
import textwrap
from concurrent.futures.process import BrokenProcessPool
from pathlib import Path

import numpy as np
import pytest

from repro.core import bitops
from repro.core.msv import DEFAULT_PARTS, compute_msv
from repro.engine import (
    BatchedClassifier,
    PackedTables,
    ShardedClassifier,
    check_span_coverage,
    make_classifier,
)
from repro.engine.shm import (
    ARENA_PREFIX,
    ShmArena,
    key_codec,
    live_arena_names,
)
from repro.workloads import random_tables

REPO_ROOT = Path(__file__).resolve().parents[2]

DEV_SHM = Path("/dev/shm")

requires_dev_shm = pytest.mark.skipif(
    not DEV_SHM.is_dir(), reason="needs a POSIX /dev/shm mount"
)


def digest(result) -> str:
    return result.buckets_digest()


def own_dev_shm_segments() -> list[str]:
    """This process's arena files visible in /dev/shm."""
    prefix = f"{ARENA_PREFIX}{os.getpid()}-"
    return sorted(p.name for p in DEV_SHM.glob(f"{prefix}*"))


class TestTransportParity:
    """shm and pickle land on the batched engine's exact buckets."""

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_worker_counts(self, workers):
        tables = random_tables(5, 60, seed=40)
        reference = digest(BatchedClassifier().classify(tables))
        for transport in ("shm", "pickle"):
            sharded = ShardedClassifier(
                workers=workers, shard_size=7, transport=transport
            )
            assert digest(sharded.classify(tables)) == reference, transport

    @pytest.mark.parametrize("shard_size", [1, 3, 37])
    def test_odd_shard_sizes(self, shard_size):
        tables = random_tables(5, 50, seed=41)
        reference = digest(BatchedClassifier().classify(tables))
        sharded = ShardedClassifier(
            workers=2, shard_size=shard_size, transport="shm"
        )
        assert digest(sharded.classify(tables)) == reference

    def test_mixed_arities_over_shm(self):
        tables = random_tables(3, 20, seed=42) + random_tables(6, 20, seed=43)
        reference = digest(BatchedClassifier().classify(tables))
        sharded = ShardedClassifier(workers=2, shard_size=6, transport="shm")
        assert digest(sharded.classify(tables)) == reference

    @pytest.mark.slow
    def test_spawn_start_method(self):
        tables = random_tables(5, 30, seed=44)
        reference = digest(BatchedClassifier().classify(tables))
        sharded = ShardedClassifier(
            workers=2, shard_size=8, start_method="spawn", transport="shm"
        )
        assert digest(sharded.classify(tables)) == reference


class TestTransportSelection:
    def test_default_prefers_shm(self):
        assert ShardedClassifier(workers=2).transport == "shm"

    def test_explicit_transports(self):
        assert ShardedClassifier(workers=2, transport="pickle").transport == (
            "pickle"
        )
        assert make_classifier(
            "sharded", workers=2, transport="pickle"
        ).transport == "pickle"

    def test_unknown_transport_rejected(self):
        with pytest.raises(ValueError, match="unknown transport"):
            ShardedClassifier(workers=2, transport="mmap")

    def test_transport_requires_sharded_engine(self):
        with pytest.raises(ValueError, match="sharded"):
            make_classifier("batched", transport="shm")


class TestKeyCodec:
    """Canonical keys survive the flat-int64 round trip byte-exactly."""

    def test_roundtrip_random_keys(self):
        codec = key_codec(4, DEFAULT_PARTS)
        for tt in random_tables(4, 12, seed=45):
            key = compute_msv(tt).key
            row = codec.flatten(key)
            assert len(row) == codec.width
            assert codec.unflatten(row) == key

    def test_codec_is_cached_per_space(self):
        assert key_codec(4, DEFAULT_PARTS) is key_codec(4, DEFAULT_PARTS)
        assert key_codec(4, DEFAULT_PARTS) is not key_codec(5, DEFAULT_PARTS)

    def test_flatten_rejects_foreign_shape(self):
        codec = key_codec(4, DEFAULT_PARTS)
        other_key = compute_msv(random_tables(5, 1, seed=46)[0]).key
        with pytest.raises(ValueError, match="shape mismatch"):
            codec.flatten(other_key)
        with pytest.raises(ValueError, match="shape mismatch"):
            codec.flatten(())

    def test_unflatten_rejects_wrong_width(self):
        codec = key_codec(4, DEFAULT_PARTS)
        with pytest.raises((ValueError, IndexError)):
            codec.unflatten([0] * (codec.width + 1))


class TestSpanCoverage:
    def test_exact_tiling_passes(self):
        check_span_coverage([(2, 3), (0, 2)], 5)  # order cannot matter

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError, match="outside"):
            check_span_coverage([(0, 2), (2, 4)], 5)
        with pytest.raises(ValueError, match="outside"):
            check_span_coverage([(0, 0)], 5)
        with pytest.raises(ValueError, match="outside"):
            check_span_coverage([(-1, 2)], 5)

    def test_rejects_overlap(self):
        with pytest.raises(ValueError, match="overlap"):
            check_span_coverage([(0, 3), (2, 3)], 5)

    def test_rejects_hole(self):
        with pytest.raises(ValueError, match="hole"):
            check_span_coverage([(0, 2), (3, 2)], 5)

    def test_rejects_partial_coverage(self):
        with pytest.raises(ValueError, match="covered 2 of 5"):
            check_span_coverage([(0, 2)], 5)


class TestWrapReadonly:
    """The zero-copy adoption path refuses anything __init__ would copy."""

    @staticmethod
    def valid_view(rows: int = 3, n: int = 6) -> np.ndarray:
        words = np.zeros((rows, bitops.words_per_table(n)), dtype="<u8")
        words.setflags(write=False)
        return words

    def test_adopts_view_without_copy(self):
        words = self.valid_view()
        packed = PackedTables.wrap_readonly(6, words)
        assert packed.words is words
        assert packed.n == 6

    def test_rejects_wrong_width(self):
        bad = np.zeros((3, 2), dtype="<u8")
        bad.setflags(write=False)
        with pytest.raises(ValueError, match="shape"):
            PackedTables.wrap_readonly(6, bad)

    def test_rejects_wrong_dtype(self):
        bad = np.zeros((3, 1), dtype="<i8")
        bad.setflags(write=False)
        with pytest.raises(ValueError, match="u8"):
            PackedTables.wrap_readonly(6, bad)

    def test_rejects_non_contiguous(self):
        wide = np.zeros((3, 2), dtype="<u8")
        view = wide[:, ::2]
        view.setflags(write=False)
        with pytest.raises(ValueError, match="contiguous"):
            PackedTables.wrap_readonly(6, view)

    def test_rejects_writeable_view(self):
        with pytest.raises(ValueError, match="read-only"):
            PackedTables.wrap_readonly(
                6, np.zeros((3, 1), dtype="<u8")
            )


class TestArenaLifecycle:
    """One arena per pool scope, recycled across calls, gone afterwards."""

    def test_arena_reused_across_calls_in_scope(self):
        classifier = ShardedClassifier(
            workers=2, shard_size=5, transport="shm"
        )
        with classifier.open_pool():
            classifier.classify(random_tables(4, 24, seed=47))
            holder = classifier._held_pool
            first = holder._arena
            assert first is not None
            classifier.classify(random_tables(4, 24, seed=48))
            assert holder._arena is first  # same capacity: recycled
            classifier.classify(random_tables(6, 600, seed=49))
            grown = holder._arena
            assert grown is not first  # bigger batch: grown by replacement
            assert grown.capacity > first.capacity
            assert live_arena_names() == [grown.name]
        assert live_arena_names() == []

    def test_no_registry_entries_after_plain_classify(self):
        classifier = ShardedClassifier(workers=2, transport="shm")
        classifier.classify(random_tables(5, 40, seed=50))
        assert live_arena_names() == []

    @requires_dev_shm
    def test_no_dev_shm_entries_after_classify(self):
        classifier = ShardedClassifier(workers=2, transport="shm")
        classifier.classify(random_tables(5, 40, seed=51))
        assert own_dev_shm_segments() == []

    def test_dispose_is_idempotent(self):
        arena = ShmArena.create(1024)
        assert arena.name in live_arena_names()
        arena.dispose()
        arena.dispose()
        assert live_arena_names() == []

    def test_create_rejects_empty_arena(self):
        with pytest.raises(ValueError, match="positive"):
            ShmArena.create(0)


def _kill_self(task):  # pragma: no cover - runs (and dies) in a worker
    os.kill(os.getpid(), signal.SIGKILL)


class TestCrashCleanup:
    def test_killed_worker_raises_and_cleans_arena(self, monkeypatch):
        """A SIGKILL'd worker surfaces as BrokenProcessPool, not a hang,
        and the scope's unwind still disposes the arena."""
        monkeypatch.setattr(
            "repro.engine.sharded._classify_shard_shm", _kill_self
        )
        classifier = ShardedClassifier(
            workers=2, shard_size=5, transport="shm", start_method="fork"
        )
        with pytest.raises(BrokenProcessPool):
            classifier.classify(random_tables(5, 40, seed=52))
        assert live_arena_names() == []
        if DEV_SHM.is_dir():
            assert own_dev_shm_segments() == []

    @requires_dev_shm
    def test_sigterm_parent_unlinks_arena(self, tmp_path):
        """A terminated owner leaves /dev/shm clean via the signal chain."""
        script = tmp_path / "owner.py"
        script.write_text(
            textwrap.dedent(
                """
                import signal
                from repro.engine.shm import ShmArena

                arena = ShmArena.create(4096)
                print(arena.name, flush=True)
                signal.pause()  # wait for the test to SIGTERM us
                """
            )
        )
        env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
        proc = subprocess.Popen(
            [sys.executable, str(script)],
            stdout=subprocess.PIPE,
            text=True,
            env=env,
        )
        try:
            name = proc.stdout.readline().strip()
            assert name.startswith(ARENA_PREFIX)
            assert (DEV_SHM / name).exists()
            proc.send_signal(signal.SIGTERM)
            returncode = proc.wait(timeout=30)
        finally:
            if proc.poll() is None:  # pragma: no cover - hung child
                proc.kill()
                proc.wait()
        # The chain handler re-raises the default SIGTERM death...
        assert returncode == -signal.SIGTERM
        # ...after unlinking the arena it owned.
        assert not (DEV_SHM / name).exists()


class TestCreateFailureWindow:
    """Pinned regression: no orphan between shm_open and registration.

    ``SharedMemory.__init__`` does *not* unlink the file it just created
    when a later step (ftruncate/mmap) dies, and historically the window
    between a successful constructor and the ``_LIVE`` registration could
    likewise leak an unregistered segment.  Both halves of the try/finally
    fix are pinned with injected failures.
    """

    @requires_dev_shm
    def test_constructor_failure_leaves_no_orphan(self, monkeypatch):
        """Constructor dies after shm_open: the file must be unlinked."""
        from repro.engine import shm as shm_module

        real = shm_module._shared_memory.SharedMemory
        created = []

        class DiesAfterCreate:
            def __init__(self, name=None, create=False, size=0):
                # Materialize the segment exactly like the real
                # constructor would, then die the way an ENOMEM mmap
                # does — after the file already exists on disk.
                segment = real(name=name, create=create, size=size)
                created.append(segment)
                raise MemoryError("injected mmap failure")

        monkeypatch.setattr(
            shm_module._shared_memory, "SharedMemory", DiesAfterCreate
        )
        before = live_arena_names()
        with pytest.raises(MemoryError, match="injected"):
            ShmArena.create(4096)
        (segment,) = created
        try:
            assert not (DEV_SHM / segment.name).exists()
            assert live_arena_names() == before
        finally:
            # Drop our leaked handle (the file itself is already gone).
            try:
                segment.close()
            except BufferError:  # pragma: no cover
                pass

    @requires_dev_shm
    def test_registration_failure_disposes_segment(self, monkeypatch):
        """``_LIVE`` insert dies: the fresh segment must be disposed."""
        from repro.engine import shm as shm_module

        class RejectingDict(dict):
            def __setitem__(self, key, value):
                raise MemoryError("injected registry failure")

        monkeypatch.setattr(shm_module, "_LIVE", RejectingDict())
        shm_count = len(own_dev_shm_segments())
        with pytest.raises(MemoryError, match="injected"):
            ShmArena.create(4096)
        assert len(own_dev_shm_segments()) == shm_count
        assert live_arena_names() == []
