"""The engine factory: every consumer's single entry point.

The CLI, the library builder, and the service coalescer all construct
engines through :func:`repro.engine.make_classifier`; a mis-typed engine
name must fail with a ValueError that names the valid choices — never an
opaque KeyError/AttributeError from deeper in the stack.
"""

import pytest

from repro.core.classifier import FacePointClassifier
from repro.core.msv import DEFAULT_PARTS
from repro.engine import (
    ENGINE_NAMES,
    BatchedClassifier,
    ShardedClassifier,
    make_classifier,
)


class TestMakeClassifier:
    def test_engine_names_cover_all_engines(self):
        assert ENGINE_NAMES == ("perfn", "batched", "sharded", "canonical")

    def test_each_name_builds_its_engine(self):
        from repro.canonical.engine import CanonicalClassifier

        assert isinstance(make_classifier("perfn"), FacePointClassifier)
        assert isinstance(make_classifier("batched"), BatchedClassifier)
        assert isinstance(make_classifier("sharded"), ShardedClassifier)
        assert isinstance(make_classifier("canonical"), CanonicalClassifier)

    def test_default_is_batched(self):
        assert isinstance(make_classifier(), BatchedClassifier)

    def test_parts_pass_through(self):
        classifier = make_classifier("batched", parts=("c0", "oiv"))
        assert classifier.parts == ("c0", "oiv")

    def test_unknown_engine_is_a_clear_value_error(self):
        with pytest.raises(ValueError) as excinfo:
            make_classifier("warp-drive")
        message = str(excinfo.value)
        assert "warp-drive" in message
        for name in ENGINE_NAMES:
            assert name in message

    @pytest.mark.parametrize("bad", ["", "BATCHED", "batched ", None, 3])
    def test_near_miss_engine_strings_also_raise(self, bad):
        with pytest.raises(ValueError):
            make_classifier(bad)

    def test_workers_only_for_sharded(self):
        with pytest.raises(ValueError) as excinfo:
            make_classifier("batched", workers=2)
        assert "sharded" in str(excinfo.value)

    def test_workers_reach_the_sharded_engine(self):
        assert make_classifier("sharded", workers=2).workers == 2
