"""BatchedClassifier: never-split parity, cache behaviour, batched pieces."""

import numpy as np
import pytest

from repro.core.classifier import FacePointClassifier
from repro.core.msv import DEFAULT_PARTS, PART_NAMES, compute_msv, compute_pieces
from repro.engine import BatchedClassifier, PackedTables, SignatureCache
from repro.engine.signatures import batched_pieces, fwht_batch
from repro.spectral.walsh import fwht
from repro.workloads import (
    packed_equivalent_tables,
    random_tables,
    seeded_equivalent_tables,
)


class TestNeverSplitParity:
    """The engine's contract: buckets identical to FacePointClassifier."""

    @pytest.mark.parametrize("n", [2, 3, 4, 5, 6])
    def test_seeded_orbits_identical_buckets(self, n):
        tables, upper_bound = seeded_equivalent_tables(
            n, orbits=12, members_per_orbit=4, seed=900 + n
        )
        reference = FacePointClassifier().classify(tables)
        batched = BatchedClassifier().classify(tables)
        assert batched.buckets_digest() == reference.buckets_digest()
        assert batched.num_classes <= upper_bound

    @pytest.mark.parametrize("n", [0, 1, 7, 8])
    def test_random_tables_identical_buckets(self, n):
        tables = random_tables(n, 64, seed=n + 7)
        reference = FacePointClassifier().classify(tables)
        batched = BatchedClassifier().classify(tables)
        assert batched.buckets_digest() == reference.buckets_digest()

    def test_all_parts_parity(self):
        tables = random_tables(4, 40, seed=11)
        reference = FacePointClassifier(PART_NAMES).classify(tables)
        batched = BatchedClassifier(PART_NAMES).classify(tables)
        assert batched.buckets_digest() == reference.buckets_digest()

    def test_packed_input_matches_list_input(self):
        packed, _ = packed_equivalent_tables(5, 10, 3, seed=5)
        tables = packed.to_tables()
        from_packed = BatchedClassifier().classify(packed)
        from_list = BatchedClassifier().classify(tables)
        assert from_packed.buckets_digest() == from_list.buckets_digest()

    def test_mixed_arity_signatures(self):
        tables = random_tables(3, 10, seed=1) + random_tables(5, 10, seed=2)
        tables = [tables[i] for i in (5, 12, 0, 19, 7, 15, 3)]
        classifier = BatchedClassifier()
        assert classifier.signatures(tables) == [compute_msv(tt) for tt in tables]

    def test_single_signature_matches_compute_msv(self):
        tt = random_tables(6, 1, seed=77)[0]
        assert BatchedClassifier().signature(tt) == compute_msv(tt)

    def test_count_classes(self):
        tables, _ = seeded_equivalent_tables(4, 8, 3, seed=21)
        assert (
            BatchedClassifier().count_classes(tables)
            == FacePointClassifier().count_classes(tables)
        )

    def test_chunking_does_not_change_results(self):
        tables = random_tables(5, 50, seed=31)
        small_chunks = BatchedClassifier(chunk_size=7).classify(tables)
        one_chunk = BatchedClassifier(chunk_size=1000).classify(tables)
        assert small_chunks.buckets_digest() == one_chunk.buckets_digest()


class TestBatchedPieces:
    @pytest.mark.parametrize("n", [0, 1, 2, 4, 6, 7])
    def test_matches_per_function_pieces(self, n):
        tables = random_tables(n, 20, seed=n + 40)
        packed = PackedTables.from_tables(tables)
        selected = tuple(name for name in PART_NAMES if name != "spectral")
        bulk = batched_pieces(packed, selected)
        for piece, tt in zip(bulk, tables):
            reference = compute_pieces(tt, selected)
            assert piece.count == reference.count
            assert sorted(piece.cof1) == sorted(reference.cof1)
            assert sorted(piece.cof2) == sorted(reference.cof2)
            assert sorted(piece.cof3) == sorted(reference.cof3)
            for field in (
                "oiv",
                "hist1",
                "hist0",
                "hist_full",
                "osdv1",
                "osdv0",
                "osdv_full",
            ):
                assert getattr(piece, field) == getattr(reference, field), field

    def test_fwht_batch_matches_scalar_fwht(self):
        rng = np.random.default_rng(3)
        block = rng.integers(-5, 6, size=(9, 32), dtype=np.int64)
        original = block.copy()
        batched = fwht_batch(block)
        assert np.array_equal(block, original)  # input is never modified
        for row_in, row_out in zip(block, batched):
            assert np.array_equal(fwht(row_in), row_out)

    def test_fwht_batch_accepts_non_contiguous_input(self):
        rng = np.random.default_rng(4)
        wide = rng.integers(-3, 4, size=(16, 9), dtype=np.int64)
        assert np.array_equal(fwht_batch(wide.T), np.stack([fwht(r) for r in wide.T]))


class TestSignatureCache:
    def test_hit_miss_accounting(self):
        cache = SignatureCache(maxsize=4)
        key = (0b1010, 2, DEFAULT_PARTS)
        assert cache.get(key) is None
        assert cache.stats.misses == 1
        signature = compute_msv(random_tables(2, 1, seed=1)[0])
        cache.put(key, signature)
        assert cache.get(key) is signature
        assert cache.stats.hits == 1
        assert cache.stats.hit_rate == 0.5

    def test_lru_eviction_order(self):
        cache = SignatureCache(maxsize=2)
        sig = compute_msv(random_tables(2, 1, seed=2)[0])
        cache.put((1, 2, DEFAULT_PARTS), sig)
        cache.put((2, 2, DEFAULT_PARTS), sig)
        assert cache.get((1, 2, DEFAULT_PARTS)) is sig  # refresh key 1
        cache.put((3, 2, DEFAULT_PARTS), sig)  # evicts key 2, not key 1
        assert cache.stats.evictions == 1
        assert (1, 2, DEFAULT_PARTS) in cache
        assert (2, 2, DEFAULT_PARTS) not in cache

    def test_zero_size_disables_caching(self):
        cache = SignatureCache(maxsize=0)
        sig = compute_msv(random_tables(2, 1, seed=3)[0])
        cache.put((1, 2, DEFAULT_PARTS), sig)
        assert len(cache) == 0
        assert cache.get((1, 2, DEFAULT_PARTS)) is None

    def test_rejects_negative_size(self):
        with pytest.raises(ValueError):
            SignatureCache(maxsize=-1)

    def test_classifier_cache_hits_on_repeat(self):
        tables = random_tables(4, 30, seed=13)
        classifier = BatchedClassifier()
        first = classifier.classify(tables)
        assert classifier.cache_stats.hits == 0
        second = classifier.classify(tables)
        assert second.buckets_digest() == first.buckets_digest()
        assert classifier.cache_stats.hits == len(tables)
        assert classifier.cache_stats.evictions == 0

    def test_in_batch_duplicates_computed_once(self):
        tt = random_tables(4, 1, seed=17)[0]
        classifier = BatchedClassifier()
        signatures = classifier.signatures([tt, tt, tt])
        assert signatures[0] == signatures[1] == signatures[2]
        # one distinct table cached, duplicates resolved within the batch
        assert len(classifier.cache) == 1

    def test_disabled_cache_still_classifies(self):
        tables = random_tables(3, 12, seed=19)
        classifier = BatchedClassifier(cache_size=0)
        reference = FacePointClassifier().classify(tables)
        assert (
            classifier.classify(tables).buckets_digest()
            == reference.buckets_digest()
        )
        assert classifier.cache_stats.hits == 0
