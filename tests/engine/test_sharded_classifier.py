"""ShardedClassifier: determinism, robustness, streaming, shard merging.

The sharded engine's contract is that *nothing about the execution
strategy is observable*: worker count, shard size, chunk size, pool
completion order and streaming granularity must all produce buckets
byte-identical to ``BatchedClassifier`` — same keys, same first-seen
group order, same member order — with cache statistics to match.
"""

import random

import pytest

from repro.core.classifier import ClassificationResult
from repro.core.msv import DEFAULT_PARTS, compute_msv
from repro.engine import (
    BatchedClassifier,
    PackedTables,
    ShardedClassifier,
    merge_shard_keys,
)
from repro.engine.sharded import _classify_shard
from repro.workloads import (
    iter_random_tables,
    random_tables,
    seeded_equivalent_tables,
)


def digest(result: ClassificationResult) -> str:
    return result.buckets_digest()


class TestDeterminism:
    """Same buckets whatever the parallel execution shape."""

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_worker_count_invisible(self, workers):
        tables, _ = seeded_equivalent_tables(5, 15, 4, seed=42)
        reference = BatchedClassifier().classify(tables)
        sharded = ShardedClassifier(workers=workers).classify(tables)
        assert digest(sharded) == digest(reference)

    @pytest.mark.parametrize("shard_size", [1, 3, 7, 64, 10_000])
    def test_odd_shard_sizes(self, shard_size):
        tables = random_tables(5, 50, seed=8)
        reference = BatchedClassifier().classify(tables)
        sharded = ShardedClassifier(workers=2, shard_size=shard_size)
        assert digest(sharded.classify(tables)) == digest(reference)

    @pytest.mark.parametrize("chunk_size", [1, 5, 4096])
    def test_odd_worker_chunk_sizes(self, chunk_size):
        tables = random_tables(4, 30, seed=9)
        reference = BatchedClassifier().classify(tables)
        sharded = ShardedClassifier(workers=2, shard_size=11, chunk_size=chunk_size)
        assert digest(sharded.classify(tables)) == digest(reference)

    def test_repeat_runs_are_identical(self):
        tables = random_tables(6, 200, seed=10)
        classifier = ShardedClassifier(workers=2, shard_size=17)
        assert digest(classifier.classify(tables)) == digest(
            classifier.classify(tables)
        )


class TestRobustness:
    """Edge inputs: empty, single, duplicates, mixed arity, packed."""

    def test_empty_input(self):
        result = ShardedClassifier(workers=2).classify([])
        assert result.num_classes == 0
        assert result.num_functions == 0
        assert digest(result) == digest(BatchedClassifier().classify([]))

    def test_single_function(self):
        tt = random_tables(5, 1, seed=11)[0]
        result = ShardedClassifier(workers=4).classify([tt])
        assert result.num_classes == 1
        assert result.groups[compute_msv(tt)] == [tt]
        assert digest(result) == digest(BatchedClassifier().classify([tt]))

    def test_duplicate_tables(self):
        tt = random_tables(4, 1, seed=12)[0]
        tables = [tt] * 9 + random_tables(4, 6, seed=13) + [tt]
        reference = BatchedClassifier().classify(tables)
        classifier = ShardedClassifier(workers=2, shard_size=2)
        result = classifier.classify(tables)
        assert digest(result) == digest(reference)
        # duplicates resolve to one cache entry, computed once
        assert result.groups[compute_msv(tt)].count(tt) == 10

    def test_mixed_arity_input(self):
        tables = random_tables(3, 9, seed=14) + random_tables(6, 9, seed=15)
        random.Random(16).shuffle(tables)
        reference = BatchedClassifier().classify(tables)
        sharded = ShardedClassifier(workers=2, shard_size=4).classify(tables)
        assert digest(sharded) == digest(reference)

    def test_packed_input(self):
        packed = PackedTables.from_tables(random_tables(5, 40, seed=17))
        reference = BatchedClassifier().classify(packed)
        sharded = ShardedClassifier(workers=2, shard_size=13).classify(packed)
        assert digest(sharded) == digest(reference)

    def test_signature_matches_compute_msv(self):
        tt = random_tables(6, 1, seed=18)[0]
        assert ShardedClassifier(workers=2).signature(tt) == compute_msv(tt)

    def test_count_classes_accepts_generator(self):
        tables = random_tables(5, 60, seed=19)
        sharded = ShardedClassifier(workers=2, shard_size=10)
        assert sharded.count_classes(iter(tables)) == BatchedClassifier(
        ).count_classes(tables)

    def test_rejects_bad_configuration(self):
        with pytest.raises(ValueError):
            ShardedClassifier(workers=0)
        with pytest.raises(ValueError):
            ShardedClassifier(workers=-2)
        with pytest.raises(ValueError):
            ShardedClassifier(shard_size=0)
        with pytest.raises(ValueError):
            ShardedClassifier(workers=2).classify_iter([], stream_chunk=0)


class TestStreaming:
    """classify_iter: bounded chunks, any iterator, identical output."""

    @pytest.mark.parametrize("stream_chunk", [1, 37, 250, 100_000])
    def test_stream_chunking_invisible(self, stream_chunk):
        tables = random_tables(5, 250, seed=20)
        reference = BatchedClassifier().classify(tables)
        sharded = ShardedClassifier(workers=2, shard_size=31)
        streamed = sharded.classify_iter(iter(tables), stream_chunk)
        assert digest(streamed) == digest(reference)

    def test_consumes_lazy_generator(self):
        sharded = ShardedClassifier(workers=2, shard_size=64)
        streamed = sharded.classify_iter(
            iter_random_tables(6, 500, seed=21), stream_chunk=128
        )
        reference = BatchedClassifier().classify(random_tables(6, 500, 21))
        assert digest(streamed) == digest(reference)

    def test_empty_stream(self):
        result = ShardedClassifier(workers=2).classify_iter(iter(()))
        assert result.num_functions == 0

    def test_cache_warm_across_chunks(self):
        tables = random_tables(4, 40, seed=22)
        sharded = ShardedClassifier(workers=2, shard_size=8)
        sharded.classify_iter(iter(tables + tables), stream_chunk=40)
        # second pass over the same 40 tables is pure cache hits
        assert sharded.cache_stats.hits == 40


class TestCacheStats:
    """SignatureCache behaviour is identical to the single-process driver."""

    def test_stats_match_batched_driver(self):
        tables = random_tables(4, 50, seed=23) + random_tables(4, 10, seed=23)
        batched = BatchedClassifier()
        sharded = ShardedClassifier(workers=2, shard_size=7)
        for _ in range(2):
            batched.classify(tables)
            sharded.classify(tables)
            assert sharded.cache_stats == batched.cache_stats

    def test_second_run_hits_every_row(self):
        tables = random_tables(5, 30, seed=24)
        sharded = ShardedClassifier(workers=2, shard_size=4)
        sharded.classify(tables)
        assert sharded.cache_stats.hits == 0
        sharded.classify(tables)
        assert sharded.cache_stats.hits == len(tables)
        assert sharded.cache_stats.evictions == 0

    def test_disabled_cache_still_classifies(self):
        tables = random_tables(4, 20, seed=25)
        sharded = ShardedClassifier(workers=2, shard_size=6, cache_size=0)
        reference = BatchedClassifier().classify(tables)
        assert digest(sharded.classify(tables)) == digest(reference)
        assert sharded.cache_stats.hits == 0

    def test_eviction_accounting(self):
        tables = random_tables(5, 40, seed=26)
        sharded = ShardedClassifier(workers=2, shard_size=9, cache_size=8)
        sharded.classify(tables)
        assert sharded.cache_stats.evictions > 0
        assert len(sharded.cache) <= 8


class TestShardMerge:
    """The deterministic merge layer rejects partial or corrupt coverage."""

    def test_out_of_order_shards_restore_input_order(self):
        shards = [[(2, "c"), (3, "d")], [(0, "a"), (1, "b")]]
        assert merge_shard_keys(shards, 4) == ["a", "b", "c", "d"]

    def test_rejects_duplicate_index(self):
        with pytest.raises(ValueError, match="twice"):
            merge_shard_keys([[(0, "a")], [(0, "b")]], 2)

    def test_rejects_missing_index(self):
        with pytest.raises(ValueError, match="covered 1 of 2"):
            merge_shard_keys([[(0, "a")]], 2)

    def test_rejects_out_of_range_index(self):
        with pytest.raises(ValueError, match="outside"):
            merge_shard_keys([[(5, "a")]], 2)

    def test_worker_body_runs_inline(self):
        """The exact function shipped to workers is testable in-process."""
        tables = random_tables(4, 6, seed=27)
        nbytes = PackedTables.from_tables(tables).words.shape[1] * 8
        buffer = b"".join(tt.bits.to_bytes(nbytes, "little") for tt in tables)
        pairs = _classify_shard((10, 4, DEFAULT_PARTS, None, buffer))
        assert [index for index, _ in pairs] == list(range(10, 16))
        for (_, key), tt in zip(pairs, tables):
            assert key == compute_msv(tt).key


class TestOpenPool:
    """Held pools are reused across calls and safe to nest."""

    def test_calls_inside_scope_reuse_one_pool(self):
        tables = random_tables(4, 30, seed=29)
        reference = BatchedClassifier().classify(tables)
        classifier = ShardedClassifier(workers=2, shard_size=5)
        with classifier.open_pool():
            first = classifier.classify(tables[:15])
            pool = classifier._held_pool._pool  # forked by the first call
            second = classifier.classify(tables[15:])
            assert classifier._held_pool._pool is pool
        assert classifier._held_pool is None  # scope tears the pool down
        assert digest(first.merged_with(second)) == digest(reference)

    def test_nested_scopes_are_reentrant(self):
        tables = random_tables(4, 12, seed=30)
        classifier = ShardedClassifier(workers=2, shard_size=3)
        with classifier.open_pool():
            outer = classifier._held_pool
            with classifier.open_pool():
                assert classifier._held_pool is outer
                classifier.classify(tables)
            assert classifier._held_pool is outer

    def test_workers_one_never_forks(self):
        classifier = ShardedClassifier(workers=1)
        with classifier.open_pool():
            classifier.classify(random_tables(4, 8, seed=31))
            assert classifier._held_pool is None


class TestStartMethods:
    """The wire format is start-method agnostic (buffers, not objects)."""

    @pytest.mark.slow
    def test_spawn_start_method(self):
        tables = random_tables(5, 30, seed=28)
        reference = BatchedClassifier().classify(tables)
        sharded = ShardedClassifier(
            workers=2, shard_size=8, start_method="spawn"
        )
        assert digest(sharded.classify(tables)) == digest(reference)
