"""Tests for the hypercube graph view and automorphism NPN oracle."""

import random

import pytest

from repro.baselines.matcher import are_npn_equivalent
from repro.core.transforms import random_transform
from repro.core.truth_table import TruthTable
from repro.hypercube.graph import (
    hypercube_graph,
    induced_subgraph,
    npn_equivalent_by_automorphism,
    subgraph_degree_histogram,
)


class TestHypercube:
    @pytest.mark.parametrize("n", range(1, 6))
    def test_graph_shape(self, n):
        graph = hypercube_graph(n)
        assert graph.number_of_nodes() == 1 << n
        assert graph.number_of_edges() == n * (1 << (n - 1))
        degrees = {d for __, d in graph.degree()}
        assert degrees == {n}

    def test_induced_subgraph_majority(self):
        """Fig. 1a: MAJ3's induced subgraph is a star around 111."""
        graph = induced_subgraph(TruthTable.majority(3))
        assert sorted(graph.nodes) == [3, 5, 6, 7]
        assert graph.number_of_edges() == 3
        assert dict(graph.degree())[7] == 3

    def test_figure1_isomorphism_claims(self):
        """Fig. 1: f1 ~ f2 have isomorphic induced subgraphs; f3 does not."""
        import networkx as nx

        f1 = TruthTable.majority(3)
        f2 = f1.apply(random_transform(3, random.Random(0)))
        f3 = TruthTable.projection(3, 2)
        assert nx.is_isomorphic(induced_subgraph(f1), induced_subgraph(f2))
        assert not nx.is_isomorphic(induced_subgraph(f1), induced_subgraph(f3))


class TestAutomorphismOracle:
    def test_equivalent_pairs(self):
        rng = random.Random(1)
        for _ in range(5):
            tt = TruthTable.random(3, rng)
            image = tt.apply(random_transform(3, rng))
            assert npn_equivalent_by_automorphism(tt, image)

    def test_output_negation_detected(self):
        tt = TruthTable.from_function(3, lambda a, b, c: a & (b | c))
        assert npn_equivalent_by_automorphism(tt, ~tt)

    def test_nonequivalent(self):
        maj = TruthTable.majority(3)
        xor3 = TruthTable.from_function(3, lambda a, b, c: a ^ b ^ c)
        assert not npn_equivalent_by_automorphism(maj, xor3)

    def test_arity_mismatch(self):
        assert not npn_equivalent_by_automorphism(
            TruthTable(2, 6), TruthTable(3, 6)
        )

    @pytest.mark.parametrize("n", [2, 3])
    def test_agrees_with_matcher(self, n):
        """Graph oracle and truth-table matcher give identical verdicts."""
        rng = random.Random(n * 7)
        for _ in range(15):
            a = TruthTable.random(n, rng)
            b = TruthTable.random(n, rng)
            assert npn_equivalent_by_automorphism(a, b) == are_npn_equivalent(a, b)


class TestDegreeHistogram:
    def test_degree_is_complement_of_sensitivity(self):
        """Induced-subgraph degree of a 1-word = n - sen(f, X) restricted to
        neighbours that are also 1-words... which is exactly n - sen for
        1-words (a non-sensitive neighbour of a 1-word is a 1-word)."""
        from repro.core.signatures import osv1

        rng = random.Random(2)
        for n in range(1, 6):
            tt = TruthTable.random(n, rng)
            histogram = subgraph_degree_histogram(tt)
            expected = [0] * (n + 1)
            for s in osv1(tt):
                expected[n - s] += 1
            assert histogram == tuple(expected)

    def test_invariant_under_np(self):
        rng = random.Random(3)
        tt = TruthTable.random(4, rng)
        t = random_transform(4, rng)
        if t.output_phase == 0:
            assert subgraph_degree_histogram(tt) == (
                subgraph_degree_histogram(tt.apply(t))
            )
