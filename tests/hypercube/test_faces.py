"""Tests linking hypercube faces to cofactor signatures."""

import random

import pytest

from repro.core.characteristics import cofactor_count, influence
from repro.core.truth_table import TruthTable
from repro.hypercube.faces import (
    face_count,
    face_minterms,
    opposite_face,
    subcube_faces,
)


class TestFaces:
    def test_face_minterms_basic(self):
        assert face_minterms(3, {0: 1}) == [1, 3, 5, 7]
        assert face_minterms(3, {0: 0, 2: 1}) == [4, 6]
        assert face_minterms(2, {}) == [0, 1, 2, 3]

    def test_face_minterms_validation(self):
        with pytest.raises(ValueError):
            face_minterms(3, {3: 0})
        with pytest.raises(ValueError):
            face_minterms(3, {0: 2})

    def test_subcube_faces_count(self):
        # C(4,2) * 4 = 24 codimension-2 faces of Q4.
        assert len(list(subcube_faces(4, 2))) == 24
        assert len(list(subcube_faces(3, 0))) == 1

    def test_face_count_equals_cofactor_count(self):
        """Paper Section II-B: cofactor signatures are 1-counts on faces."""
        rng = random.Random(0)
        tt = TruthTable.random(4, rng)
        for fixed in subcube_faces(4, 1):
            ((i, v),) = fixed.items()
            assert face_count(tt, fixed) == tt.cofactor_count(i, v)
        for fixed in subcube_faces(4, 2):
            (i, vi), (j, vj) = sorted(fixed.items())
            assert face_count(tt, fixed) == cofactor_count(
                tt, (i, j), vi | (vj << 1)
            )

    def test_opposite_face(self):
        assert opposite_face({0: 1, 2: 0}, 0) == {0: 0, 2: 0}
        with pytest.raises(ValueError):
            opposite_face({0: 1}, 1)

    def test_influence_is_face_disagreement(self):
        """Paper Section II-D: influence counts disagreements between a
        face and its opposite face."""
        rng = random.Random(1)
        tt = TruthTable.random(4, rng)
        for i in range(4):
            face = {i: 1}
            disagreements = sum(
                tt.evaluate(m) != tt.evaluate(m ^ (1 << i))
                for m in face_minterms(4, face)
            )
            assert disagreements == influence(tt, i)
