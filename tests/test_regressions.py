"""Regression tests for bugs found (and fixed) during development.

Each test documents a specific failure mode so it cannot silently
reappear; see the git-less changelog in the docstrings.
"""

import itertools
import random

from repro.core import bitops
from repro.core.msv import compute_msv
from repro.core.truth_table import TruthTable


class TestPermutationComposition:
    """`permute_inputs` once composed value-transpositions on the wrong
    side, so non-involutive permutations (any with a 3-cycle) produced the
    inverse permutation's table."""

    def test_three_cycle(self):
        t = 0b10110010
        fast = bitops.permute_inputs(t, 3, (1, 2, 0))
        reference = bitops.permute_inputs_reference(t, 3, (1, 2, 0))
        assert fast == reference

    def test_all_n4_permutations(self):
        rng = random.Random(42)
        t = rng.getrandbits(16)
        for perm in itertools.permutations(range(4)):
            assert bitops.permute_inputs(t, 4, perm) == (
                bitops.permute_inputs_reference(t, 4, perm)
            )


class TestHeapSnapshot:
    """`exact_npn_canonical` stored Heap's live permutation list in its
    best-state; by the time the loop ended the list had mutated, so the
    witnessing transform was wrong (though the representative was right)."""

    def test_witness_verifies_for_many_functions(self):
        from repro.baselines.exact_enum import exact_npn_canonical

        rng = random.Random(7)
        for _ in range(30):
            tt = TruthTable.random(4, rng)
            form = exact_npn_canonical(tt)
            assert tt.apply(form.transform) == form.representative


class TestNullaryPhase:
    """`compute_msv` skipped output-phase normalisation for n = 0, so the
    two constant functions (which are NPN equivalent) split."""

    def test_constants_share_msv(self):
        assert compute_msv(TruthTable(0, 0)) == compute_msv(TruthTable(0, 1))

    def test_all_widths_constants_merge(self):
        for n in range(0, 6):
            zero = TruthTable.constant(n, 0)
            one = TruthTable.constant(n, 1)
            assert compute_msv(zero) == compute_msv(one)


class TestCutDiversity:
    """Priority-cut filtering originally kept only the smallest cuts, so
    extraction yielded almost no functions at the larger cut sizes the
    paper's tables sweep (n = 7..10)."""

    def test_large_cuts_survive_filtering(self):
        from repro.aig.builders import ripple_adder
        from repro.workloads.extraction import extract_cut_functions

        functions = extract_cut_functions(ripple_adder(10), sizes=[4, 6, 8])
        assert len(functions[6]) > 0
        assert len(functions[8]) > 0


class TestVariableKeyScope:
    """`variable_keys` was documented as NPN-invariant; it is only
    NP-invariant (cofactor pairs complement under output negation).  The
    matcher normalises output phase before using the keys, so matching
    stays complete — pinned here from both directions."""

    def test_matcher_handles_output_negation(self):
        from repro.baselines.matcher import find_npn_transform

        rng = random.Random(9)
        for _ in range(10):
            tt = TruthTable.random(4, rng)
            transform = find_npn_transform(tt, ~tt)
            assert transform is not None
            assert tt.apply(transform) == ~tt

    def test_keys_differ_across_polarity(self):
        from repro.baselines.matcher import variable_keys

        and3 = TruthTable.from_function(3, lambda a, b, c: a & b & c)
        assert sorted(variable_keys(and3)) != sorted(variable_keys(~and3))
