#!/usr/bin/env python
"""Anatomy of the paper's signatures: Table I and the Figs. 3-4 case studies.

Walks through the exact functions the paper uses to motivate point
characteristics:

* Table I    — every signature vector of f1 (3-majority) and f3;
* Fig. 3     — a balanced NPN-equivalent pair whose OSV0/OSV1 swap;
* Fig. 4     — non-equivalent pairs that cofactor signatures cannot
               separate but influence/sensitivity can.

Run:  python examples/signature_anatomy.py
"""

from repro.analysis.tables import format_table
from repro.baselines.matcher import are_npn_equivalent
from repro.core import signatures as sig
from repro.core.classifier import FacePointClassifier
from repro.experiments.fig34 import (
    find_fig3_witness,
    find_fig4_g_witness,
    find_fig4_h_witness,
)
from repro.experiments.table1 import run_table1
from repro.hypercube.graph import induced_subgraph


def main() -> None:
    # --- Table I ---------------------------------------------------------
    rows = [
        {
            "signature": row["signature"],
            "f1 (MAJ3)": row["f1"],
            "f3 (projection)": row["f3"],
            "paper": "ok" if row["matches_paper"] else "MISMATCH",
        }
        for row in run_table1()
    ]
    print(format_table(rows, title="Table I — recomputed signature vectors"))

    # --- Fig. 3: the balanced-function subtlety ---------------------------
    f = find_fig3_witness()
    g = ~f
    print("\nFig. 3 — balanced equivalent pair (reconstructed):")
    print(f"  f = {f!r}:  OSV1={sig.osv1(f)}  OSV0={sig.osv0(f)}")
    print(f"  g = {g!r}:  OSV1={sig.osv1(g)}  OSV0={sig.osv0(g)}")
    assert are_npn_equivalent(f, g)
    assert sig.osv1(f) == sig.osv0(g) and sig.osv0(f) == sig.osv1(g)
    print("  -> NPN equivalent, OSV0/OSV1 swapped: Theorem 3's balanced case.")
    graph = induced_subgraph(f)
    print(f"  (induced subgraph: {graph.number_of_nodes()} nodes, "
          f"{graph.number_of_edges()} edges on the Q4 hypercube)")

    # --- Fig. 4: point characteristics refine face characteristics --------
    g1, g2 = find_fig4_g_witness()
    print("\nFig. 4 (g1, g2) — OIV splits what OCV1/OCV2 cannot:")
    print(f"  OCV1 both = {sig.ocv1(g1)}")
    print(f"  OIV(g1) = {sig.oiv(g1)}   OIV(g2) = {sig.oiv(g2)}")
    assert not are_npn_equivalent(g1, g2)
    cofactors_only = FacePointClassifier(["c0", "ocv1", "ocv2"])
    with_influence = FacePointClassifier(["c0", "ocv1", "ocv2", "oiv"])
    print(f"  classes by cofactors alone: {cofactors_only.count_classes([g1, g2])}")
    print(f"  classes with OIV added:     {with_influence.count_classes([g1, g2])}")

    h1, h2 = find_fig4_h_witness()
    print("\nFig. 4 (h1, h2) — OSV splits what OCV1/OCV2/OIV cannot:")
    print(f"  OIV both  = {sig.oiv(h1)}")
    print(f"  OSV1(h1) = {sig.osv1(h1)}   OSV1(h2) = {sig.osv1(h2)}")
    assert not are_npn_equivalent(h1, h2)
    with_osv = FacePointClassifier(["c0", "ocv1", "ocv2", "oiv", "osv"])
    print(f"  classes with OIV only: {with_influence.count_classes([h1, h2])}")
    print(f"  classes with OSV too:  {with_osv.count_classes([h1, h2])}")


if __name__ == "__main__":
    main()
