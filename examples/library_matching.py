#!/usr/bin/env python
"""Technology-mapping scenario: match logic cones against a cell library.

The intro of the paper motivates NPN classification with logic synthesis
and technology mapping: a mapper must decide, for each cut function in the
subject circuit, whether some library cell implements it up to input
negation/permutation and output negation — and with *which* pin
assignment.

This example builds a small standard-cell library, indexes it by MSV
(the paper's signatures as a hash key), and maps an adder's cut functions
onto cells.  For every signature hit the exact matcher produces the pin
binding (the NPN transform), demonstrating signatures-as-prefilter +
matcher-as-certifier — the architecture of a real Boolean matcher.

Run:  python examples/library_matching.py
"""

from repro import TruthTable
from repro.aig.builders import ripple_adder
from repro.baselines.matcher import find_npn_transform
from repro.core.msv import compute_msv
from repro.workloads.extraction import extract_cut_functions

LIBRARY_CELLS = {
    "AND3": TruthTable.from_function(3, lambda a, b, c: a & b & c),
    "OR3": TruthTable.from_function(3, lambda a, b, c: a | b | c),
    "MAJ3": TruthTable.majority(3),
    "XOR3": TruthTable.from_function(3, lambda a, b, c: a ^ b ^ c),
    "AOI21": TruthTable.from_function(3, lambda a, b, c: int(not ((a & b) | c))),
    "MUX": TruthTable.from_function(3, lambda s, t, f: (t if s else f)),
    "AND2_BUF": TruthTable.from_function(3, lambda a, b, c: a & b),
}


def main() -> None:
    # --- Index the library by MSV ---------------------------------------
    library_index = {}
    for name, cell in LIBRARY_CELLS.items():
        library_index.setdefault(compute_msv(cell), []).append((name, cell))
    print(f"library: {len(LIBRARY_CELLS)} cells, "
          f"{len(library_index)} distinct signatures")

    # --- Extract subject-circuit cut functions --------------------------
    adder = ripple_adder(8)
    cuts = extract_cut_functions(adder, sizes=[3])[3]
    print(f"subject: {adder!r}")
    print(f"         {len(cuts)} unique 3-input cut functions\n")

    # --- Match: signature prefilter, exact matcher certifies ------------
    mapped, unmapped = 0, 0
    for cut_tt in cuts:
        candidates = library_index.get(compute_msv(cut_tt), [])
        binding = None
        for cell_name, cell_tt in candidates:
            transform = find_npn_transform(cell_tt, cut_tt)
            if transform is not None:
                binding = (cell_name, transform)
                break
        if binding is None:
            unmapped += 1
            print(f"  {cut_tt.to_binary()}  ->  (no library cell)")
        else:
            mapped += 1
            cell_name, transform = binding
            print(f"  {cut_tt.to_binary()}  ->  {cell_name:8s} pins: {transform}")

    print(f"\nmapped {mapped}/{mapped + unmapped} cut functions onto cells")
    # The adder's cones are sums and carries: XOR3/MAJ3 (and the smaller
    # degenerate cones) must all map.
    assert mapped >= unmapped


if __name__ == "__main__":
    main()
