#!/usr/bin/env python
"""Fig. 5 in miniature: runtime stability of signature vs canonical form.

Classifies growing sets of consecutive-encoding random functions (the
paper's Fig. 5 workload) with the face/point classifier and the Zhou'20
canonical-form baseline, printing the cumulative-runtime series and a
stability score (relative spread of per-chunk runtimes).

Run:  python examples/runtime_stability.py
"""

from repro.analysis.tables import format_table
from repro.analysis.timing import time_classifier
from repro.baselines import get_classifier
from repro.experiments.fig5 import fig5_series
from repro.workloads.random_functions import consecutive_tables

COUNTS = (500, 1000, 2000, 4000)
METHODS = ("ours", "zhou20")


def main() -> None:
    for width in (5, 7):
        series = fig5_series(width, COUNTS, METHODS, seed=11 * width)
        rows = [
            {
                "functions": point,
                **{m: f"{series[m][k]:.3f}s" for m in METHODS},
            }
            for k, point in enumerate(series["points"])
        ]
        print(format_table(rows, title=f"{width}-bit cumulative runtime"))

        tables = consecutive_tables(width, COUNTS[-1], seed=99 + width)
        scores = {
            m: time_classifier(get_classifier(m), tables, chunks=10)
            for m in METHODS
        }
        print("stability (lower = steadier): " + "  ".join(
            f"{m}={run.chunk_relative_spread:.3f}" for m, run in scores.items()
        ))
        print()

    print(
        "Reading: 'ours' grows linearly with the function count and its\n"
        "per-chunk runtime barely varies; the canonical-form baseline's\n"
        "cost depends on each function's symmetry structure (Fig. 5)."
    )


if __name__ == "__main__":
    main()
