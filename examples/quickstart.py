#!/usr/bin/env python
"""Quickstart: truth tables, signatures, and NPN classification in 60 lines.

Run:  python examples/quickstart.py
"""

from repro import TruthTable
from repro.core import signatures as sig
from repro.core.classifier import FacePointClassifier
from repro.core.transforms import NPNTransform


def main() -> None:
    # --- Build some functions -----------------------------------------
    maj = TruthTable.majority(3)  # the paper's f1 (Fig. 1a)
    print(f"3-majority: {maj!r}  binary={maj.to_binary()}")

    # Apply an NPN transform: permute (x2, x0, x1), negate x0 and output.
    transform = NPNTransform(perm=(2, 0, 1), input_phase=0b001, output_phase=1)
    image = maj.apply(transform)
    print(f"transformed by {transform}: {image!r}")

    # --- Signature vectors (paper Definitions 6-10) --------------------
    print("\nSignature vectors of MAJ3 (compare paper Table I):")
    print(f"  OCV1 = {sig.ocv1(maj)}")
    print(f"  OCV2 = {sig.ocv2(maj)}")
    print(f"  OIV  = {sig.oiv(maj)}")
    print(f"  OSV  = {sig.osv(maj)}")
    print(f"  OSDV = {sig.osdv(maj)}")

    # Signatures are NPN invariants: the transformed copy agrees.
    assert sig.oiv(image) == sig.oiv(maj)
    assert sig.osv(image) == sig.osv(maj)
    print("  (the transformed copy has identical OIV/OSV - Theorems 1-2)")

    # --- Classification (Algorithm 1) ----------------------------------
    functions = [
        maj,
        image,  # NPN-equivalent to maj
        ~maj,  # also equivalent (output negation)
        TruthTable.projection(3, 0),  # the paper's f3 family
        TruthTable.from_function(3, lambda a, b, c: a ^ b ^ c),
        TruthTable.from_function(3, lambda a, b, c: a & (b | c)),
        TruthTable.constant(3, 1),
    ]
    classifier = FacePointClassifier()
    result = classifier.classify(functions)
    print(f"\nClassified {result.num_functions} functions "
          f"into {result.num_classes} NPN classes:")
    for index, members in enumerate(result.groups.values()):
        rendered = ", ".join(tt.to_binary() for tt in members)
        print(f"  class {index}: {rendered}")

    # The three majority variants share one class; nothing else merged.
    assert result.num_classes == 5


if __name__ == "__main__":
    main()
