#!/usr/bin/env python
"""Persistent class library: build once, save, reload, match with witnesses.

The flow a Boolean-matching service runs: build the complete n <= 3
class inventory, persist it to a versioned artifact, reload it, and
resolve queries to ``(class id, NPN transform witness)`` pairs — every
witness verified against the stored representative.

Run:  python examples/persistent_library.py
"""

import random
import tempfile
from pathlib import Path

from repro.analysis.tables import format_table
from repro.core.transforms import random_transform
from repro.core.truth_table import TruthTable
from repro.library import ClassLibrary, build_exhaustive_library


def main() -> None:
    library = build_exhaustive_library(3)
    print(format_table(library.stats(), title="Exhaustive n<=3 library"))

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "npn_library"
        library.save(path)
        print(f"\nsaved to {path} ({', '.join(p.name for p in path.iterdir())})")
        reloaded = ClassLibrary.load(path)

    rng = random.Random(7)
    print("\nresolving random queries against the reloaded library:")
    for _ in range(4):
        query = TruthTable.random(3, rng).apply(random_transform(3, rng))
        hit = reloaded.match(query)
        assert hit is not None and hit.verify(query)
        print(
            f"  {query!s:>6} -> {hit.class_id}  witness {hit.transform}  "
            f"(rep {hit.representative})"
        )


if __name__ == "__main__":
    main()
