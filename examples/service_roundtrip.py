#!/usr/bin/env python
"""Online service round trip: serve a library, query it, read the metrics.

The flow a synthesis tool runs against the daemon: an exhaustive n <= 3
library is served in-process (``ThreadedService`` wraps the same
``ClassificationService`` the ``repro-npn serve`` CLI runs), a blocking
``ServiceClient`` resolves random NPN-transformed queries — pipelined,
so the daemon's coalescer folds them into a handful of engine batches —
and every served witness is re-verified offline before the metrics
snapshot shows what coalescing and caching did.

Run:  python examples/service_roundtrip.py
"""

import random

from repro.core.transforms import random_transform
from repro.core.truth_table import TruthTable
from repro.library import build_exhaustive_library
from repro.service import ServiceClient, ThreadedService


def main() -> None:
    library = build_exhaustive_library(3)
    print(f"serving {library.num_classes} classes of arity 3\n")

    rng = random.Random(2023)
    queries = [
        TruthTable.random(3, rng).apply(random_transform(3, rng))
        for _ in range(300)
    ]

    with ThreadedService(library, max_batch=128, max_wait_ms=2.0) as svc:
        print(f"daemon listening on {svc.address}")
        with ServiceClient(port=svc.port) as client:
            one = client.match("11101000")  # 3-input majority
            print(f"majority -> {one['class_id']}  witness {one['transform']}")

            results = client.match_many(queries)  # pipelined burst
            verified = sum(
                ServiceClient.verify(result, query)
                for query, result in zip(queries, results)
            )
            print(f"pipelined {len(queries)} queries, "
                  f"{verified} witnesses re-verified offline")

            repeat = client.match_many(queries)  # warm: served from cache
            cached = sum(result["cached"] for result in repeat)
            print(f"repeat burst: {cached}/{len(repeat)} answered from cache\n")

            stats = client.stats()
            for key in (
                "requests_total",
                "batches",
                "mean_batch_size",
                "cache_hit_rate",
                "latency_p50_ms",
                "latency_p99_ms",
            ):
                print(f"  {key:>16} = {stats[key]}")
    print("\ndaemon drained and stopped")


if __name__ == "__main__":
    main()
