#!/usr/bin/env python
"""Building an exact NPN class library — the paper's future work, applied.

The paper closes by noting that influence/sensitivity could be combined
with traditional canonical-form methods to reach *exact* classification.
This example uses that combination (the signature-guided exact
canonicaliser) to build the kind of artifact synthesis tools need:

1. the complete library of 3-input NPN classes (all 14 of them), with
   orbit sizes — a pattern library for rewriting;
2. the class distribution of a real circuit's cut functions — which
   classes dominate an arithmetic netlist.

Run:  python examples/class_library.py
"""

from repro.aig.builders import multiplier, ripple_adder
from repro.analysis.tables import format_table
from repro.baselines.guided import guided_exact_canonical, search_space_size
from repro.core.classes import (
    class_distribution,
    npn_class_representatives,
    orbit_size,
    stabilizer_order,
)
from repro.core.transforms import group_order
from repro.workloads.extraction import extract_cut_functions


def main() -> None:
    # --- 1. The complete 3-input class library --------------------------
    representatives = npn_class_representatives(3)
    rows = []
    for rep in representatives:
        rows.append(
            {
                "representative": rep.to_binary(),
                "orbit": orbit_size(rep),
                "symmetries": stabilizer_order(rep),
                "search": search_space_size(rep),
            }
        )
    print(format_table(rows, title="All 14 NPN classes of 3-input functions"))
    total = sum(row["orbit"] for row in rows)
    print(f"orbit sizes sum to {total} = 2^8 (the whole function space)")
    print(f"guided search is tiny vs the group order {group_order(3)}\n")

    # --- 2. Class distribution of circuit logic -------------------------
    cuts = extract_cut_functions(
        [ripple_adder(8), multiplier(4)], sizes=[3]
    )[3]
    distribution = class_distribution(cuts)
    print(f"{len(cuts)} unique 3-input cut functions from adder8 + mult4, "
          f"{len(distribution)} exact NPN classes\n")
    top = distribution.most_common(5)
    rows = [
        {
            "class": rep.to_binary(),
            "cut_functions": count,
            "share": f"{100 * count / len(cuts):.0f}%",
        }
        for rep, count in top
    ]
    print(format_table(rows, title="Most common classes in the netlists"))
    print(
        "\nReading: a handful of classes (AND-like, XOR/MAJ carry logic)\n"
        "covers most cones — why NPN pattern libraries stay small."
    )


if __name__ == "__main__":
    main()
