#!/usr/bin/env python
"""End-to-end synthesis scenario: classify the cut functions of circuits.

This is the paper's Section V pipeline in miniature: build circuits,
enumerate k-feasible cuts, extract deduplicated truth tables, and compare
the face/point classifier against the exact engine and the heuristic
baselines — the very workflow a technology mapper runs to group logic
cones before matching them to library cells.

Run:  python examples/classify_circuit_cuts.py
"""

from repro.analysis.tables import format_table
from repro.analysis.timing import time_classifier
from repro.baselines import get_classifier
from repro.workloads.epfl import epfl_like_suite, suite_summary
from repro.workloads.extraction import extract_cut_functions, extraction_report


def main() -> None:
    # --- 1. The benchmark circuits --------------------------------------
    suite = epfl_like_suite(scale=1)
    print(format_table(suite_summary(suite), title="EPFL-like circuit suite"))

    # --- 2. Cut enumeration -> truth tables (paper Section V-A) ---------
    functions = extract_cut_functions(
        suite.values(), sizes=(4, 5, 6), limit_per_size=1500
    )
    print()
    print(format_table(extraction_report(functions), title="Extracted cut functions"))

    # --- 3. Classify with every method (paper Table III, miniature) -----
    rows = []
    for n in sorted(functions):
        tables = functions[n]
        exact = get_classifier("exact").classify(tables).num_classes
        row = {"n": n, "functions": len(tables), "exact": exact}
        for method in ("huang13", "zhou20", "ours"):
            run = time_classifier(get_classifier(method), tables)
            row[method] = f"{run.classes} ({run.seconds:.2f}s)"
        rows.append(row)
    print()
    print(format_table(rows, title="Classes (time) per method vs exact"))

    print(
        "\nReading: 'ours' matches exact; huang13 reports more classes\n"
        "because its unresolved ties split orbits; see Table III benches\n"
        "for the full comparison."
    )


if __name__ == "__main__":
    main()
