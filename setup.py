"""Setup shim: enables legacy editable installs where `wheel` is unavailable.

All project metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
